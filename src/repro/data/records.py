"""Record-triple view of multi-source data.

Section 2.7.1 of the paper defines the input format of parallel CRH as
tuples ``(eID, v, sID)``: an entry identifier, the claimed value, and the
claiming source.  This module provides that flat view as
:class:`Record` triples plus lossless converters to and from the dense
:class:`~repro.data.table.MultiSourceDataset` representation, so the
MapReduce pipeline, the streaming pipeline and the in-memory solver all
consume the same datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

import numpy as np

from .encoding import MISSING_CODE
from .schema import DatasetSchema
from .table import DatasetBuilder, MultiSourceDataset


@dataclass(frozen=True)
class EntryId:
    """Identifier of one (object, property) entry."""

    object_id: Hashable
    property_name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.object_id}::{self.property_name}"


@dataclass(frozen=True)
class Record:
    """One claim: source ``source_id`` says entry ``entry`` has ``value``.

    ``value`` is the *decoded* value (a label for categorical properties, a
    float for continuous ones); ``timestamp`` carries the stream position
    for I-CRH workloads and is ``None`` for static data.
    """

    entry: EntryId
    value: object
    source_id: Hashable
    timestamp: int | None = None


def dataset_to_records(dataset: MultiSourceDataset) -> Iterator[Record]:
    """Flatten a dense dataset into ``(eID, v, sID)`` record triples.

    Records are emitted property-major then source-major; missing cells are
    skipped, so ``len(list(...)) == dataset.n_observations()``.
    """
    timestamps = dataset.object_timestamps
    for prop in dataset.properties:
        name = prop.schema.name
        observed = prop.observed_mask()
        for k in range(dataset.n_sources):
            source_id = dataset.source_ids[k]
            for i in np.flatnonzero(observed[k]):
                raw = prop.values[k, i]
                if prop.schema.uses_codec:
                    value: object = prop.codec.decode(int(raw))
                else:
                    value = float(raw)
                yield Record(
                    entry=EntryId(dataset.object_ids[i], name),
                    value=value,
                    source_id=source_id,
                    timestamp=(int(timestamps[i])
                               if timestamps is not None else None),
                )


def records_to_dataset(
    records: Iterable[Record],
    schema: DatasetSchema,
) -> MultiSourceDataset:
    """Assemble record triples back into a dense dataset.

    The inverse of :func:`dataset_to_records` up to object/source ordering
    (both are re-derived from first occurrence in the record stream).
    """
    builder = DatasetBuilder(schema)
    for record in records:
        builder.add(
            record.entry.object_id,
            record.source_id,
            record.entry.property_name,
            record.value,
            timestamp=record.timestamp,
        )
    return builder.build()


def encoded_record_arrays(
    dataset: MultiSourceDataset,
) -> dict[str, dict[str, np.ndarray]]:
    """Columnar encoded record arrays per property, for vectorized engines.

    Returns, for every property name, a dict with three aligned arrays:
    ``object`` (int32 object indices), ``source`` (int32 source indices) and
    ``value`` (float64 for continuous, int32 codes for categorical).  This
    is the zero-copy-ish bulk format the MapReduce batches are built from —
    building Python :class:`Record` objects for 10^7 observations would
    dominate the runtime being measured.
    """
    out: dict[str, dict[str, np.ndarray]] = {}
    for prop in dataset.properties:
        observed = prop.observed_mask()
        sources, objects = np.nonzero(observed)
        values = prop.values[sources, objects]
        out[prop.schema.name] = {
            "object": objects.astype(np.int32),
            "source": sources.astype(np.int32),
            "value": values,
        }
    return out


def count_observations_per_source(dataset: MultiSourceDataset) -> np.ndarray:
    """``(K,)`` observation counts, used to normalize source deviations."""
    counts = np.zeros(dataset.n_sources, dtype=np.int64)
    for prop in dataset.properties:
        counts += prop.observed_mask().sum(axis=1)
    return counts


def claimed_values(
    dataset: MultiSourceDataset, object_index: int, property_index: int
) -> dict[Hashable, object]:
    """Decoded claims about one entry, keyed by source id (debug helper)."""
    prop = dataset.properties[property_index]
    claims: dict[Hashable, object] = {}
    for k in range(dataset.n_sources):
        raw = prop.values[k, object_index]
        if prop.schema.uses_codec:
            if raw != MISSING_CODE:
                claims[dataset.source_ids[k]] = prop.codec.decode(int(raw))
        elif not np.isnan(raw):
            claims[dataset.source_ids[k]] = float(raw)
    return claims
