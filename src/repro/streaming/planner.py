"""Recompute planning: resolve only what new claims invalidated.

When claims arrive for objects whose truths were already resolved, the
service does not replay the stream — the truth step of CRH/I-CRH is
separable per object, so re-resolving exactly the dirty objects under
the *current* weights reproduces what a full recompute would produce
for them (the oracle property the equivalence tests pin).  The planner
decides the scope:

* ``none``  — dirty set empty, nothing to do;
* ``dirty`` — re-resolve the dirty objects only (the common case);
* ``full``  — the dirty set crossed ``full_fraction`` of all objects,
  so one batched pass over everything is cheaper than per-object
  bookkeeping.

:func:`resolve_truths` is the shared execution path: it assembles a
chunk from the :class:`~repro.streaming.store.ClaimStore` and runs the
existing per-property loss kernels — the same segment kernels every
backend uses — under a caller-provided weight vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.sweep import resolve_properties


@dataclass(frozen=True)
class RecomputePlan:
    """What the planner decided to re-resolve."""

    #: ``none``, ``dirty`` or ``full``
    scope: str
    #: store object indices to re-resolve (empty for ``none``)
    object_indices: np.ndarray
    #: per-plan scratch: :func:`resolve_truths` stashes the assembled
    #: chunk here so repeated resolves under one plan reuse the chunk's
    #: claim views — and with them the cached claim grouping and median
    #: sort plans — instead of re-deriving them from ``indptr`` per call.
    #: The cache reflects the store at first-assembly time, which is
    #: exactly the plan's own lifetime contract (a plan is computed from
    #: one dirty snapshot and discarded after it is applied).
    cache: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def n_objects(self) -> int:
        """How many objects the plan re-resolves."""
        return int(self.object_indices.size)


class RecomputePlanner:
    """Chooses between dirty-set and full recomputation.

    ``full_fraction`` is the dirty-set share of all objects above which
    a full pass is planned instead (1.0 disables escalation).
    """

    def __init__(self, full_fraction: float = 0.5) -> None:
        if not 0.0 < full_fraction <= 1.0:
            raise ValueError(
                f"full_fraction must be in (0, 1], got {full_fraction}"
            )
        self.full_fraction = full_fraction

    def plan(self, dirty_indices, n_objects: int) -> RecomputePlan:
        """Plan a recompute for ``dirty_indices`` out of ``n_objects``."""
        dirty = np.asarray(sorted(dirty_indices), dtype=np.int64)
        if dirty.size == 0:
            return RecomputePlan("none", dirty)
        if n_objects and dirty.size >= self.full_fraction * n_objects:
            return RecomputePlan(
                "full", np.arange(n_objects, dtype=np.int64))
        return RecomputePlan("dirty", dirty)


def resolve_truths(store, object_indices: np.ndarray,
                   weights: np.ndarray, losses, *,
                   plan: RecomputePlan | None = None) -> list[np.ndarray]:
    """Re-resolve the truths of ``object_indices`` under ``weights``.

    ``weights`` is indexed by the store's source positions (length
    ``store.n_sources``); ``losses`` is one
    :class:`~repro.core.losses.Loss` per schema property.  Returns one
    truth column per property, aligned with ``object_indices`` — the
    same kernels and claim order a window seal uses, so a freshly
    sealed object re-resolves bit-identically.

    When ``plan`` is given, the chunk assembled from the store is cached
    on ``plan.cache`` so repeated resolves under the same plan (e.g.
    weight refreshes against one dirty snapshot) reuse the chunk's claim
    views and their cached grouping / median sort plans rather than
    recomputing them from ``indptr`` every call.  The truth step itself
    runs through the fused sweep
    (:func:`~repro.core.sweep.resolve_properties`), sharing the
    effective-weight computation across kernels exactly like the batch
    solver does.
    """
    chunk = plan.cache.get("chunk") if plan is not None else None
    if chunk is None:
        chunk = store.dataset_for(object_indices)
        if plan is not None:
            plan.cache["chunk"] = chunk
    states = resolve_properties(chunk, losses, weights)
    columns: list[np.ndarray] = []
    for state, prop in zip(states, chunk.properties):
        if prop.schema.uses_codec:
            columns.append(np.asarray(state.column, dtype=np.int32))
        else:
            columns.append(np.asarray(state.column, dtype=np.float64))
    return columns
