"""TruthService — the long-lived serving facade over the stream layers.

The service composes the layered streaming stack into the
ingest/read/snapshot surface the ROADMAP's serving story asks for:

* :class:`~repro.streaming.store.ClaimStore` absorbs arriving claims
  and tracks the dirty set;
* :class:`~repro.streaming.icrh.IncrementalCRH` (over
  :class:`~repro.streaming.state.TruthState`) advances Algorithm 2 one
  sealed window at a time;
* :class:`~repro.streaming.planner.RecomputePlanner` re-resolves only
  dirty objects through the shared segment kernels;
* :class:`~repro.streaming.state.TruthCache` serves warm, versioned
  truths to :meth:`TruthService.get_truth`.

Windowing: a window *seals* — runs one Algorithm-2 chunk step — once
claims for more than ``window`` distinct timestamps are pending, or on
:meth:`TruthService.flush`.  Sealed truths are chunk-final, matching
the batch :func:`~repro.streaming.icrh.icrh` stitching bit for bit
when the stream is replayed in canonical order (time-major, then
object, then ascending source — :func:`iter_dataset_claims` yields
exactly that order).  Claims that arrive for already-sealed time
ranges never rewrite weight history (I-CRH "never revisits past
data"); they mark their object dirty, and its truth is re-resolved
under the *current* weights — identical to what a full recompute
would produce for that object.

Snapshots persist the claim store via the sparse
:func:`repro.data.io.save_dataset` format (``schema.json`` +
``claims.npz`` + ``dataset.json``) plus ``state.npz`` (accumulators,
weights, history, truth cache) and ``service.json`` (config, window
bookkeeping, counters).  Restoring canonicalizes the stored claim
order — deterministic, and documented as part of the format.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..core.regularizers import (
    ExponentialWeights,
    LpNormWeights,
    TopJSelectionWeights,
)
from ..data.io import load_dataset, save_dataset
from ..data.records import Record
from ..data.schema import DatasetSchema
from ..data.table import TruthTable
from ..observability import ingest_record, read_record
from ..observability.metrics import MetricsRegistry
from ..observability.profiling import Profiler, activate, span
from ..observability.tracer import Tracer
from .icrh import ICRHConfig, IncrementalCRH, losses_for_schema
from .planner import RecomputePlanner, resolve_truths
from .state import TruthCache
from .store import Claim, ClaimStore


@dataclass(frozen=True)
class TruthSnapshot:
    """One immutable published view of the truth cache.

    Publications are copy-on-write: the column/version arrays are
    read-only views frozen by
    :meth:`~repro.streaming.state.TruthCache.publish`, so a reader
    holding a snapshot sees a consistent truth state forever — later
    seals and recomputes copy the backing buffers instead of mutating
    them in place.  ``seq`` increases by one per publication and
    ``epoch`` records the Algorithm-2 weight epoch the snapshot's
    freshest truths were resolved under, which is what the torn-read
    fuzz in ``tests/test_concurrent_serving.py`` checks against.
    """

    #: monotone publication number (0 is the empty initial snapshot)
    seq: int
    #: Algorithm-2 weight epoch at publication time
    epoch: int
    #: objects covered by the snapshot (ids registered later are absent)
    n_objects: int
    #: read-only truth columns, one per schema property
    columns: tuple
    #: read-only per-object resolution epochs (-1 = never resolved)
    versions: np.ndarray


@dataclass(frozen=True)
class IngestReport:
    """What one :meth:`TruthService.ingest` batch did."""

    #: claims absorbed from the batch
    ingested_claims: int
    #: objects first seen in the batch
    new_objects: int
    #: sources first seen in the batch
    new_sources: int
    #: windows sealed (Algorithm-2 chunk steps run) by the batch
    windows_sealed: int
    #: dirty-set size when the batch finished absorbing claims
    dirty_objects: int
    #: objects the recompute planner re-resolved afterwards
    recomputed_objects: int
    #: wall-clock seconds the batch took end to end
    elapsed_seconds: float


def as_claim(item) -> Claim:
    """Normalize a claim-like input to a :class:`Claim`.

    Accepts :class:`Claim`, :class:`repro.data.records.Record`, or a
    5-tuple ``(object_id, property_name, source_id, value, timestamp)``.
    """
    if isinstance(item, Claim):
        return item
    if isinstance(item, Record):
        return Claim(item.entry.object_id, item.entry.property_name,
                     item.source_id, item.value, item.timestamp)
    if isinstance(item, (tuple, list)) and len(item) == 5:
        return Claim(*item)
    raise TypeError(
        f"cannot interpret {type(item).__name__} as a claim; pass a "
        f"Claim, a Record, or a (object_id, property_name, source_id, "
        f"value, timestamp) tuple"
    )


def iter_dataset_claims(dataset) -> Iterator[Claim]:
    """Yield a timestamped dataset's claims in canonical replay order.

    Order: ascending timestamp (stable over dataset object order
    within a timestamp), then property, then ascending source index —
    the claim order under which replaying through
    :meth:`TruthService.ingest` is bit-identical to batch
    :func:`~repro.streaming.icrh.icrh` on the time-sorted dataset.
    Codec-backed values are yielded as decoded labels.
    """
    timestamps = dataset.object_timestamps
    if timestamps is None:
        raise ValueError("dataset has no object timestamps to replay")
    timestamps = np.asarray(timestamps)
    codecs = dataset.codecs()
    views = [prop.claim_view() for prop in dataset.properties]
    decoders = [codecs.get(prop.name) for prop in dataset.schema]
    for i in np.argsort(timestamps, kind="stable"):
        object_id = dataset.object_ids[i]
        stamp = timestamps[i]
        for prop, view, codec in zip(dataset.schema, views, decoders):
            lo, hi = int(view.indptr[i]), int(view.indptr[i + 1])
            for c in range(lo, hi):
                value = (codec.decode(int(view.values[c]))
                         if codec is not None else float(view.values[c]))
                yield Claim(object_id, prop.name,
                            dataset.source_ids[int(view.source_idx[c])],
                            value, stamp)


# ---------------------------------------------------------------------
# config (de)serialization for snapshots
# ---------------------------------------------------------------------

def _scheme_to_dict(scheme) -> dict:
    """JSON form of a built-in weight scheme (snapshot format)."""
    if isinstance(scheme, ExponentialWeights):
        return {"name": "exponential", "normalizer": scheme.normalizer,
                "floor_ratio": scheme.floor_ratio}
    if isinstance(scheme, LpNormWeights):
        return {"name": "lp", "p": scheme.p}
    if isinstance(scheme, TopJSelectionWeights):
        return {"name": "top_j", "j": scheme.j}
    raise ValueError(
        f"snapshots support the built-in weight schemes only, "
        f"got {scheme!r}"
    )


def _scheme_from_dict(data: dict):
    """Rebuild a weight scheme from its snapshot JSON form."""
    name = data.get("name")
    if name == "exponential":
        return ExponentialWeights(normalizer=data["normalizer"],
                                  floor_ratio=data["floor_ratio"])
    if name == "lp":
        return LpNormWeights(p=data["p"])
    if name == "top_j":
        return TopJSelectionWeights(j=data["j"])
    raise ValueError(f"unknown weight scheme {name!r} in snapshot")


def _config_to_dict(config: ICRHConfig) -> dict:
    """JSON form of an :class:`~repro.streaming.icrh.ICRHConfig`."""
    return {
        "decay": config.decay,
        "categorical_loss": config.categorical_loss,
        "continuous_loss": config.continuous_loss,
        "text_loss": config.text_loss,
        "normalize_by_counts": config.normalize_by_counts,
        "backend": config.backend,
        "tol": config.tol,
        "weight_scheme": _scheme_to_dict(config.weight_scheme),
    }


def _config_from_dict(data: dict) -> ICRHConfig:
    """Rebuild an :class:`~repro.streaming.icrh.ICRHConfig` from JSON."""
    fields = dict(data)
    scheme = _scheme_from_dict(fields.pop("weight_scheme"))
    return ICRHConfig(weight_scheme=scheme, **fields)


#: schema version stamped into ``service.json``
SNAPSHOT_SCHEMA = 1


class TruthService:
    """Long-lived truth serving: ingest claims, read truths and weights.

    >>> service = TruthService(dataset.schema, window=2,
    ...                        codecs=dataset.codecs())
    >>> service.ingest(iter_dataset_claims(dataset))
    >>> service.flush()                      # seal the tail window
    >>> truths = service.get_truth(dataset.object_ids[:10])
    >>> weights = service.get_weights()

    ``codecs`` seeds the store's label coding (pass the source
    dataset's codecs when replaying one, so categorical codes — and
    vote tie-breaks — line up with the batch oracle).  The execution
    path is pinned to the sparse backend: chunks assembled by the
    claim store must never be densified, because densification would
    reorder claims and break replay equivalence.
    """

    def __init__(self, schema: DatasetSchema, *, window: int = 1,
                 config: ICRHConfig | None = None, codecs=None,
                 tracer: Tracer | None = None,
                 profiler: Profiler | None = None,
                 planner: RecomputePlanner | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.schema = schema
        self.window = int(window)
        self.config = config or ICRHConfig()
        self.tracer = tracer
        self.profiler = (profiler if profiler is not None
                         and profiler.enabled else None)
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self._store = ClaimStore(schema, codecs=codecs)
        self._cache = TruthCache(schema)
        self._planner = planner or RecomputePlanner()
        serving_config = (self.config if self.config.backend == "sparse"
                          else replace(self.config, backend="sparse"))
        self._model = IncrementalCRH(serving_config, tracer=tracer,
                                     profiler=self.profiler)
        self._losses = losses_for_schema(schema, self.config)
        #: pending (unsealed) timestamps -> object indices, arrival order
        self._pending: dict[float, list[int]] = {}
        self._sealed_high: float | None = None
        #: router hook: () -> (weights over store sources, weight epoch);
        #: installed by ShardedTruthService so shard-local resolution
        #: runs under the router's *global* Algorithm-2 weights
        self._external_state = None
        registry = self.registry
        self._c_ingested = registry.counter("ingested_claims")
        self._c_sealed = registry.counter("windows_sealed")
        self._c_recomputed = registry.counter("recomputed_objects")
        self._c_read = registry.counter("read_objects")
        self._c_hits = registry.counter("cache_hits")
        self._c_misses = registry.counter("cache_misses")
        self._c_snapshot_reads = registry.counter("snapshot_reads")
        self._h_ingest = registry.histogram("ingest_seconds")
        self._h_read = registry.histogram("read_seconds")
        self._h_seal = registry.histogram("seal_seconds")
        self._snapshot: TruthSnapshot | None = None
        self._publish()

    # ------------------------------------------------------------------
    @property
    def source_ids(self) -> tuple:
        """Sources seen so far, in first-appearance order."""
        return self._store.source_ids

    @property
    def object_ids(self) -> tuple:
        """Objects seen so far, in first-appearance order."""
        return self._store.object_ids

    @property
    def n_objects(self) -> int:
        """Objects seen so far."""
        return self._store.n_objects

    @property
    def n_sources(self) -> int:
        """Sources seen so far."""
        return self._store.n_sources

    @property
    def dirty_objects(self) -> int:
        """Current dirty-set size (objects awaiting re-resolution)."""
        return len(self._store.dirty)

    @property
    def store(self) -> ClaimStore:
        """The underlying claim store (read-mostly introspection)."""
        return self._store

    @property
    def model(self) -> IncrementalCRH:
        """The underlying Algorithm-2 model (weights, history)."""
        return self._model

    def _tracing(self) -> bool:
        return self.tracer is not None and self.tracer.enabled

    def _current_weights(self) -> np.ndarray:
        """Weights over *all* store sources, in store order.

        The model's state registers the store's source list (a prefix
        of the current one) at each seal; sources that arrived since
        carry the Algorithm-2 line-1 weight of 1.
        """
        weights = np.ones(self._store.n_sources)
        k = self._model.state.n_sources
        if k:
            weights[:k] = self._model.state.weights
        return weights

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, claims: Iterable) -> IngestReport:
        """Absorb a batch of claims, sealing windows as they complete.

        Each claim is a :class:`~repro.streaming.store.Claim` (or
        anything :func:`as_claim` accepts) and must carry a timestamp.
        After the batch is absorbed, the recompute planner re-resolves
        every dirty object under the current weights, so reads after
        ``ingest`` returns are always fresh.  Emits one ``ingest``
        trace record per call when tracing.
        """
        started = time.perf_counter()
        store = self._store
        k_before = store.n_sources
        absorbed = 0
        new_objects = 0
        sealed = 0
        with activate(self.profiler):
            with span(self.profiler, "ingest"):
                for item in claims:
                    claim = as_claim(item)
                    if claim.timestamp is None:
                        raise ValueError(
                            "claims need timestamps to drive window "
                            "sealing; got None for object "
                            f"{claim.object_id!r}"
                        )
                    obj, created = store.add(claim)
                    absorbed += 1
                    if created:
                        new_objects += 1
                        stamp = float(claim.timestamp)
                        if (self._sealed_high is not None
                                and stamp <= self._sealed_high):
                            # Late object in a sealed time range: dirty
                            # only; weights are never rewritten.
                            pass
                        else:
                            self._pending.setdefault(
                                stamp, []).append(obj)
                            sealed += self._seal_ready()
            dirty_after = len(store.dirty)
            with span(self.profiler, "recompute"):
                recomputed = self._recompute_dirty()
        elapsed = time.perf_counter() - started
        self._c_ingested.inc(absorbed)
        self._c_recomputed.inc(recomputed)
        self._h_ingest.observe(elapsed)
        self._update_gauges()
        self._publish()
        report = IngestReport(
            ingested_claims=absorbed,
            new_objects=new_objects,
            new_sources=store.n_sources - k_before,
            windows_sealed=sealed,
            dirty_objects=dirty_after,
            recomputed_objects=recomputed,
            elapsed_seconds=elapsed,
        )
        if self._tracing():
            self.tracer.emit(ingest_record(
                ingested_claims=report.ingested_claims,
                new_objects=report.new_objects,
                new_sources=report.new_sources,
                windows_sealed=report.windows_sealed,
                dirty_objects=report.dirty_objects,
                recomputed_objects=report.recomputed_objects,
                elapsed_seconds=elapsed,
            ))
        return report

    def flush(self) -> int:
        """Seal every pending window (end-of-stream or checkpointing).

        Returns how many windows were sealed.  After ``ingest`` of a
        whole stream plus ``flush``, the service state matches a batch
        :func:`~repro.streaming.icrh.icrh` run over the same stream.
        """
        sealed = 0
        with activate(self.profiler):
            while self._pending:
                window_ts = sorted(self._pending)[:self.window]
                self._seal(window_ts)
                sealed += 1
        self._update_gauges()
        self._publish()
        return sealed

    def _seal_ready(self) -> int:
        """Seal windows while more than ``window`` timestamps pend."""
        sealed = 0
        while len(self._pending) > self.window:
            window_ts = sorted(self._pending)[:self.window]
            self._seal(window_ts)
            sealed += 1
        return sealed

    def _seal(self, window_ts) -> None:
        """Run one Algorithm-2 chunk step over the window's objects."""
        started = time.perf_counter()
        objects: list[int] = []
        for stamp in sorted(window_ts):
            objects.extend(self._pending.pop(stamp))
        indices = np.asarray(objects, dtype=np.int64)
        chunk = self._store.dataset_for(indices)
        truths = self._model.partial_fit(chunk)
        self._cache.ensure(self._store.n_objects)
        self._cache.store(indices, truths.columns,
                          version=self._model.state.epoch)
        # Window members are freshly resolved; anything else stays
        # dirty for the planner.
        self._store.dirty.difference_update(objects)
        high = float(max(window_ts))
        self._sealed_high = (high if self._sealed_high is None
                             else max(self._sealed_high, high))
        self._c_sealed.inc()
        self._h_seal.observe(time.perf_counter() - started)

    def _recompute_dirty(self) -> int:
        """Drain the dirty set through the planner; returns how many
        objects were re-resolved."""
        if not self._store.dirty:
            return 0
        plan = self._planner.plan(self._store.dirty,
                                  self._store.n_objects)
        if plan.scope == "none":
            return 0
        self._resolve_into_cache(plan.object_indices, plan=plan)
        self._store.dirty.clear()
        return plan.n_objects

    def _serving_state(self) -> tuple[np.ndarray, int]:
        """The weights (over store sources) and epoch resolution runs
        under: the service's own model, unless a router installed a
        global-state hook (sharded serving)."""
        if self._external_state is not None:
            weights, epoch = self._external_state()
            return np.asarray(weights, dtype=np.float64), int(epoch)
        return self._current_weights(), self._model.state.epoch

    def _resolve_into_cache(self, indices: np.ndarray, *,
                            plan=None) -> None:
        """Re-resolve ``indices`` under current weights into the cache."""
        weights, epoch = self._serving_state()
        columns = resolve_truths(self._store, indices,
                                 weights, self._losses,
                                 plan=plan)
        self._cache.ensure(self._store.n_objects)
        self._cache.store(indices, columns, version=epoch)

    def recompute_all(self) -> int:
        """Re-resolve *every* object under the current weights.

        The full-recompute oracle the dirty-set path is tested
        against; also useful to refresh chunk-final truths after the
        weights have drifted.  Returns how many objects were resolved.
        """
        if self._store.n_objects == 0:
            return 0
        indices = np.arange(self._store.n_objects, dtype=np.int64)
        self._resolve_into_cache(indices)
        self._store.dirty.clear()
        self._update_gauges()
        self._publish()
        return int(indices.size)

    # ------------------------------------------------------------------
    # shard-facing API (driven by ShardedTruthService)
    # ------------------------------------------------------------------
    def absorb(self, claims: Iterable) -> tuple[int, int]:
        """Absorb claims into the store *without* window bookkeeping.

        The sharded router owns the global window clock: it decides
        what seals and when, so a shard only appends claims (marking
        their objects dirty) and leaves sealing to
        :meth:`apply_seal` / recomputation to :meth:`drain_dirty`.
        Returns ``(claims_absorbed, objects_first_seen)``.  The
        published truth snapshot is *not* advanced — absorbed claims
        become readable once the router seals or drains.
        """
        store = self._store
        absorbed = 0
        new_objects = 0
        for item in claims:
            _, created = store.add(as_claim(item))
            absorbed += 1
            if created:
                new_objects += 1
        self._c_ingested.inc(absorbed)
        return absorbed, new_objects

    def apply_seal(self, object_indices, columns, version: int) -> None:
        """Install router-computed sealed truths for local objects.

        ``object_indices`` are *this shard's* store indices,
        ``columns`` the matching rows of the global chunk's truth
        columns (shared codec space, so categorical codes line up),
        and ``version`` the global weight epoch of the seal.  The
        objects leave the dirty set and a fresh truth snapshot is
        published.
        """
        indices = np.asarray(object_indices, dtype=np.int64)
        self._cache.ensure(self._store.n_objects)
        self._cache.store(indices, columns, version=int(version))
        self._store.dirty.difference_update(int(i) for i in indices)
        self._update_gauges()
        self._publish()

    def drain_dirty(self) -> int:
        """Drain this shard's dirty set under the serving weights.

        The sharded-mode equivalent of the recompute pass
        :meth:`ingest` runs after each batch: resolves every dirty
        object (through the planner) under :meth:`_serving_state`'s
        weights — the router's global weights when sharded — and
        publishes a fresh snapshot.  Returns the objects re-resolved.
        """
        recomputed = self._recompute_dirty()
        self._c_recomputed.inc(recomputed)
        self._update_gauges()
        self._publish()
        return recomputed

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _publish(self) -> None:
        """Publish the current truth cache as an immutable snapshot.

        Readers pick the snapshot up with one attribute read
        (:meth:`snapshot_view`); the reference swap is atomic, so
        :meth:`read_truth` never observes a half-written state.
        """
        self._cache.ensure(self._store.n_objects)
        columns, versions = self._cache.publish()
        previous = self._snapshot
        seq = 0 if previous is None else previous.seq + 1
        _, epoch = self._serving_state()
        self._snapshot = TruthSnapshot(
            seq=seq, epoch=epoch, n_objects=int(versions.size),
            columns=columns, versions=versions,
        )
        if self.registry.enabled:
            self.registry.gauge("snapshot_seq").set(seq)

    def snapshot_view(self) -> TruthSnapshot:
        """The latest published :class:`TruthSnapshot` (no lock taken)."""
        return self._snapshot

    def read_truth(self, object_ids: Iterable) -> TruthTable:
        """Snapshot-isolated truths for ``object_ids`` — never blocks.

        Serves the latest *published* snapshot: one atomic reference
        read, then pure array indexing against immutable columns, so a
        concurrent seal or recompute can never tear the result — every
        value returned belongs to one single publication.  The cost of
        the isolation: claims absorbed after the last publication are
        not visible (objects never sealed/resolved read as missing),
        and ids first seen after it raise ``KeyError`` exactly like
        unknown ids.  Use :meth:`get_truth` for read-your-writes
        freshness instead.
        """
        snapshot = self._snapshot
        ids = list(object_ids)
        index = self._store._object_index
        indices = np.empty(len(ids), dtype=np.int64)
        for j, object_id in enumerate(ids):
            position = index.get(object_id)
            if position is None or position >= snapshot.n_objects:
                raise KeyError(
                    f"object {object_id!r} is not in the published "
                    f"truth snapshot (seq {snapshot.seq})"
                )
            indices[j] = position
        columns = [column[indices] for column in snapshot.columns]
        self._c_snapshot_reads.inc(len(ids))
        return TruthTable(
            schema=self.schema,
            object_ids=ids,
            columns=columns,
            codecs=self._store.codecs(),
        )

    def get_truth(self, object_ids: Iterable) -> TruthTable:
        """Current truths for ``object_ids`` (cache-served).

        Unknown ids raise ``KeyError``.  Objects with no cache entry or
        with un-recomputed dirty claims are resolved on demand under
        the current weights (a cache miss); everything else is a warm
        hit.  Emits one ``read`` trace record per call when tracing.
        """
        started = time.perf_counter()
        ids = list(object_ids)
        store = self._store
        indices = np.fromiter(
            (store.object_position(o) for o in ids),
            dtype=np.int64, count=len(ids),
        )
        self._cache.ensure(store.n_objects)
        with activate(self.profiler):
            with span(self.profiler, "read"):
                if ids:
                    stale = np.fromiter(
                        (int(i) in store.dirty for i in indices),
                        dtype=bool, count=len(ids),
                    )
                    miss_mask = (self._cache.versions(indices) < 0) | stale
                    misses = np.unique(indices[miss_mask])
                    if misses.size:
                        self._resolve_into_cache(misses)
                        store.dirty.difference_update(
                            int(i) for i in misses)
                        self._publish()
                else:
                    miss_mask = np.zeros(0, dtype=bool)
                columns = self._cache.columns_at(indices)
        table = TruthTable(
            schema=self.schema,
            object_ids=ids,
            columns=columns,
            codecs=store.codecs(),
        )
        hits = int((~miss_mask).sum())
        misses_n = len(ids) - hits
        self._c_read.inc(len(ids))
        self._c_hits.inc(hits)
        self._c_misses.inc(misses_n)
        self._h_read.observe(time.perf_counter() - started)
        self._update_gauges()
        if self._tracing():
            self.tracer.emit(read_record(
                read_objects=len(ids),
                cache_hits=hits,
                cache_misses=misses_n,
                cache_hit_rate=hits / len(ids) if ids else 1.0,
                elapsed_seconds=time.perf_counter() - started,
            ))
        return table

    def get_weights(self) -> np.ndarray:
        """Current per-source weights, aligned with :attr:`source_ids`.

        Sources not yet covered by a sealed window carry the
        Algorithm-2 line-1 weight of 1.
        """
        return self._current_weights()

    def weights_by_source(self) -> dict:
        """Weights keyed by source id (convenience for reporting)."""
        return dict(zip(self._store.source_ids, self._current_weights()))

    def _update_gauges(self) -> None:
        """Refresh the registry's point-in-time serving gauges."""
        registry = self.registry
        if not registry.enabled:
            return
        registry.gauge("dirty_objects").set(len(self._store.dirty))
        registry.gauge("pending_timestamps").set(len(self._pending))
        registry.gauge("cached_objects").set(self._cache.n_cached())
        registry.gauge("truth_version").set(self._model.state.epoch)
        drift = self._model.last_weight_delta
        registry.gauge("weight_drift").set(
            0.0 if drift is None else drift)
        weights = self._current_weights()
        total = float(weights.sum())
        if total > 0:
            p = weights[weights > 0] / total
            entropy = float(-(p * np.log(p)).sum())
        else:
            entropy = 0.0
        registry.gauge("weight_entropy").set(entropy)
        hits = self._c_hits.value
        reads = hits + self._c_misses.value
        registry.gauge("cache_hit_rate").set(hits / reads
                                             if reads else 1.0)

    def _serving_totals(self) -> dict:
        """The lifetime serving counters as a plain int dict (the
        snapshot's ``totals`` key and the counter half of
        :meth:`metrics`)."""
        return {
            "ingested_claims": int(self._c_ingested.value),
            "windows_sealed": int(self._c_sealed.value),
            "recomputed_objects": int(self._c_recomputed.value),
            "read_objects": int(self._c_read.value),
            "cache_hits": int(self._c_hits.value),
            "cache_misses": int(self._c_misses.value),
            "snapshot_reads": int(self._c_snapshot_reads.value),
        }

    def metrics(self) -> dict:
        """Serving counters: sizes, dirty set, cache hit rate.

        Backed by :attr:`registry` — the counter-valued keys read the
        live :class:`~repro.observability.metrics.MetricsRegistry`
        counters (all zero under a disabled registry); every key is a
        ``docs/OBSERVABILITY.md`` glossary name.
        """
        totals = self._serving_totals()
        hits = totals["cache_hits"]
        reads = hits + totals["cache_misses"]
        return {
            "n_sources": self._store.n_sources,
            "n_objects": self._store.n_objects,
            "n_claims": self._store.n_claims(),
            "windows_sealed": totals["windows_sealed"],
            "pending_timestamps": len(self._pending),
            "dirty_objects": len(self._store.dirty),
            "cached_objects": self._cache.n_cached(),
            "ingested_claims": totals["ingested_claims"],
            "recomputed_objects": totals["recomputed_objects"],
            "read_objects": totals["read_objects"],
            "cache_hits": hits,
            "cache_misses": totals["cache_misses"],
            "cache_hit_rate": hits / reads if reads else 1.0,
            "snapshot_reads": totals["snapshot_reads"],
            "snapshot_seq": self._snapshot.seq,
        }

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def snapshot(self, directory) -> None:
        """Persist the full service state under ``directory``.

        Writes the claim store via the sparse
        :func:`repro.data.io.save_dataset` layout, the numeric state
        (accumulators, weights, history, truth cache) as ``state.npz``,
        and the bookkeeping (config, window state, counters) as
        ``service.json``.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_dataset(self._store.to_claims_matrix(), directory)
        state = self._model.state
        self._cache.ensure(self._store.n_objects)
        history = (state.weight_history() if state.history_length
                   else np.zeros((0, state.n_sources)))
        arrays = {
            "accumulated": state.accumulated.copy(),
            "counts": state.counts.copy(),
            "weights": state.weights.copy(),
            "weight_history": history,
            "cache_versions": self._cache.all_versions(),
        }
        for m, column in enumerate(self._cache.full_columns()):
            arrays[f"cache_col{m}"] = column
        np.savez(directory / "state.npz", **arrays)
        meta = {
            "snapshot_schema": SNAPSHOT_SCHEMA,
            "window": self.window,
            "config": _config_to_dict(self.config),
            "n_state_sources": state.n_sources,
            "epoch": state.epoch,
            "chunks_seen": self._model.chunks_seen,
            "window_advances": self._model.window_advances,
            "decay_applications": self._model.decay_applications,
            "sealed_high": self._sealed_high,
            "pending": [[stamp, objs]
                        for stamp, objs in self._pending.items()],
            "dirty": sorted(int(i) for i in self._store.dirty),
            "totals": self._serving_totals(),
        }
        (directory / "service.json").write_text(json.dumps(meta, indent=2))

    @classmethod
    def restore(cls, directory, *, tracer: Tracer | None = None,
                profiler: Profiler | None = None,
                metrics: MetricsRegistry | None = None) -> "TruthService":
        """Rebuild a service from a :meth:`snapshot` directory."""
        directory = Path(directory)
        meta = json.loads((directory / "service.json").read_text())
        if meta.get("snapshot_schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported snapshot_schema "
                f"{meta.get('snapshot_schema')!r} in {directory}"
            )
        matrix = load_dataset(directory)
        service = cls(
            matrix.schema,
            window=int(meta["window"]),
            config=_config_from_dict(meta["config"]),
            codecs=matrix.codecs(),
            tracer=tracer,
            profiler=profiler,
            metrics=metrics,
        )
        service._store = ClaimStore.from_claims_matrix(matrix)
        bundle = np.load(directory / "state.npz")
        k = int(meta["n_state_sources"])
        if k:
            padded = bundle["weight_history"]
            history = []
            for row in padded:
                observed = np.flatnonzero(~np.isnan(row))
                length = int(observed[-1]) + 1 if observed.size else 0
                history.append(row[:length])
            service._model.state.load(
                service._store.source_ids[:k],
                bundle["accumulated"], bundle["counts"],
                bundle["weights"], history, epoch=int(meta["epoch"]),
            )
        service._model._chunks_seen = int(meta["chunks_seen"])
        service._model.window_advances = int(meta["window_advances"])
        service._model.decay_applications = int(
            meta["decay_applications"])
        versions = bundle["cache_versions"]
        columns = [bundle[f"cache_col{m}"]
                   for m in range(len(matrix.schema))]
        service._cache.load(columns, versions)
        service._cache.ensure(service._store.n_objects)
        sealed_high = meta.get("sealed_high")
        service._sealed_high = (None if sealed_high is None
                                else float(sealed_high))
        service._pending = {
            float(stamp): [int(i) for i in objs]
            for stamp, objs in meta.get("pending", [])
        }
        service._store.dirty = {int(i) for i in meta.get("dirty", [])}
        for name, value in meta.get("totals", {}).items():
            service.registry.counter(name).inc(float(value))
        service._update_gauges()
        service._publish()
        return service
