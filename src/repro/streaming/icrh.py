"""Incremental CRH (I-CRH) — Algorithm 2 of the paper.

I-CRH processes the stream one chunk at a time and never revisits past
data:

1. *truth step* — compute the chunk's truths from the source weights
   learned on history (Eq. 3 with the current weights);
2. *accumulate* — decay the per-source accumulated distances by ``alpha``
   and add the chunk's deviations:
   ``a_k <- a_k * alpha + sum_im d_m(v*_iml, v^k_iml)``;
3. *weight step* — recompute weights from the accumulated distances.

Smaller ``alpha`` forgets the past faster.  Observation counts are decayed
with the same rate so the count normalization of Section 2.5 stays
consistent under decay.  Each chunk costs a single pass — no inner
iteration — which is where the Table 5 speedup over CRH comes from.

:class:`IncrementalCRH` is a thin adapter over the layered serving
state: source registration, accumulators, weights and history live in
:class:`~repro.streaming.state.TruthState` (amortized-growth arrays —
registering K sources costs O(K), not the O(K^2) of per-source
``np.append``).  The long-lived serving facade on the same layers is
:class:`~repro.streaming.service.TruthService`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.kernels import accumulate_source_deviations
from ..core.losses import Loss, loss_by_name
from ..core.regularizers import ExponentialWeights, WeightScheme
from ..core.result import TruthDiscoveryResult
from ..core.solver import states_to_truth_table
from ..data.encoding import MISSING_CODE
from ..data.schema import PropertyKind
from ..data.table import TruthTable
from ..engine import BACKEND_NAMES, make_backend
from ..observability import run_finished, run_started, stream_chunk_record
from ..observability.profiling import Profiler, activate, span
from ..observability.tracer import Tracer
from .state import TruthState
from .windows import StreamChunk, chunk_by_window


@dataclass(frozen=True)
class ICRHConfig:
    """Configuration of incremental CRH.

    ``decay`` is the paper's ``alpha`` in [0, 1]: the impact of historical
    data on the current weight estimate (0 = only the newest chunk
    matters, 1 = all history counts equally).  Loss, weight-scheme and
    ``backend`` choices mirror :class:`~repro.core.solver.CRHConfig`;
    each arriving chunk is resolved through
    :func:`repro.engine.make_backend`.  ``tol`` is the weight-movement
    tolerance convergence reporting uses: a full-stream run counts as
    converged when the final chunk moved no weight by more than ``tol``.
    """

    decay: float = 0.5
    categorical_loss: str = "zero_one"
    continuous_loss: str = "absolute"
    text_loss: str = "edit_distance"
    weight_scheme: WeightScheme = field(
        default_factory=lambda: ExponentialWeights(normalizer="max")
    )
    normalize_by_counts: bool = True
    backend: str = "auto"
    tol: float = 1e-3

    def __post_init__(self) -> None:
        if not 0.0 <= self.decay <= 1.0:
            raise ValueError(f"decay must be in [0, 1], got {self.decay}")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, "
                f"got {self.backend!r}"
            )
        if self.tol < 0.0:
            raise ValueError(f"tol must be >= 0, got {self.tol}")


def losses_for_schema(schema, config: ICRHConfig) -> list[Loss]:
    """One loss per schema property, per the config's kind mapping."""
    losses: list[Loss] = []
    for prop in schema:
        if prop.kind is PropertyKind.CATEGORICAL:
            name = config.categorical_loss
        elif prop.kind is PropertyKind.TEXT:
            name = config.text_loss
        else:
            name = config.continuous_loss
        losses.append(loss_by_name(name))
    return losses


class IncrementalCRH:
    """Stateful one-pass truth discovery over arriving chunks.

    Use :meth:`partial_fit` chunk by chunk (online deployment),
    :func:`icrh` to run over a whole timestamped dataset at once, or
    :class:`~repro.streaming.service.TruthService` for the long-lived
    ingest/read serving facade.  All per-source state lives in
    :attr:`state`, a :class:`~repro.streaming.state.TruthState`.
    """

    def __init__(self, config: ICRHConfig | None = None,
                 tracer: Tracer | None = None,
                 profiler: Profiler | None = None) -> None:
        self.config = config or ICRHConfig()
        self.tracer = tracer
        #: optional profiler activated around each partial_fit call
        self.profiler = (profiler if profiler is not None
                         and profiler.enabled else None)
        #: the per-source accumulator/weight layer (shared with serving)
        self.state = TruthState()
        self._chunks_seen = 0
        self._last_weight_delta: float | None = None
        #: stream windows consumed (one per partial_fit call)
        self.window_advances = 0
        #: times the decay factor was applied to accumulated history
        self.decay_applications = 0

    # ------------------------------------------------------------------
    @property
    def source_ids(self) -> tuple:
        """All sources seen so far, in order of first appearance."""
        return self.state.source_ids

    @property
    def weights(self) -> np.ndarray:
        """Current source weights, aligned with :attr:`source_ids`."""
        if self._chunks_seen == 0:
            raise ValueError("no chunk processed yet")
        return self.state.weights

    @property
    def weight_history(self) -> np.ndarray:
        """``(T, K)`` weights after each of the ``T`` chunks (Fig. 4a).

        Sources that joined the stream late carry ``NaN`` for the chunks
        before their arrival.
        """
        if self._chunks_seen == 0:
            raise ValueError("no chunk processed yet")
        return self.state.weight_history()

    @property
    def chunks_seen(self) -> int:
        """Chunks absorbed so far."""
        return self._chunks_seen

    @property
    def last_weight_delta(self) -> float | None:
        """Max absolute weight movement of the latest chunk (``None``
        before the first chunk) — what convergence reporting reads."""
        return self._last_weight_delta

    def _positions_for(self, chunk) -> np.ndarray:
        """Accumulator positions of the chunk's sources, registering
        first-time sources (a new source starts with ``a_k = 0`` and
        weight 1, exactly Algorithm 2's line-1 initialization).
        Amortized O(1) per source via the state layer's growable
        arrays."""
        return self.state.register(chunk.source_ids)

    # ------------------------------------------------------------------
    def _losses_for(self, dataset) -> list[Loss]:
        """One loss per property of ``dataset`` (see
        :func:`losses_for_schema`)."""
        return losses_for_schema(dataset.schema, self.config)

    def partial_fit(self, chunk) -> TruthTable:
        """Process one chunk: truths from current weights, then update.

        ``chunk`` may be dense or sparse; it is resolved through the
        config's ``backend`` selector.  Chunks align sources by
        *identifier*, so the stream's source set may evolve: a
        previously unseen source joins with zero accumulated distance
        and weight 1 (Algorithm 2 line 1), and sources absent from a
        chunk simply contribute nothing while their history keeps
        decaying.

        When a tracer was given at construction, each call emits one
        ``chunk`` record (weights, weight delta, arrival counters).
        With a profiler, each call contributes to ``setup`` /
        ``truth_step`` / ``accumulate`` / ``weight_step`` phase spans
        plus the kernel counters.
        """
        tracing = self.tracer is not None and self.tracer.enabled
        prof = self.profiler
        state = self.state
        with activate(prof):
            with span(prof, "setup"):
                chunk = make_backend(chunk, self.config.backend).data
                known_sources = state.n_sources
                positions = self._positions_for(chunk)
                new_sources = state.n_sources - known_sources
                weights_for_chunk = state.weights[positions]
                losses = self._losses_for(chunk)
            # Line 3: truths for the current chunk under the learned
            # weights.
            with span(prof, "truth_step"):
                states = [
                    loss.update_truth(prop, weights_for_chunk)
                    for loss, prop in zip(losses, chunk.properties)
                ]
            # Lines 4-5: decay-accumulate distances, then recompute
            # weights.
            with span(prof, "accumulate"):
                chunk_dev = np.zeros(chunk.n_sources)
                chunk_cnt = np.zeros(chunk.n_sources)
                for loss, prop, truth_state in zip(losses, chunk.properties,
                                                   states):
                    dev = loss.claim_deviations(truth_state, prop)
                    totals, counts = accumulate_source_deviations(
                        dev, prop.claim_view().source_idx,
                        chunk.n_sources
                    )
                    chunk_dev += totals
                    chunk_cnt += counts
                if self._chunks_seen:
                    self.decay_applications += 1
                state.decay(self.config.decay)
                state.add_deviations(positions, chunk_dev, chunk_cnt)
            with span(prof, "weight_step"):
                self._last_weight_delta = state.refresh_weights(
                    self.config.weight_scheme,
                    self.config.normalize_by_counts,
                )
        self._chunks_seen += 1
        self.window_advances += 1
        state.record_history()
        if tracing:
            self.tracer.emit(stream_chunk_record(
                self._chunks_seen,
                n_objects=chunk.n_objects,
                n_sources=chunk.n_sources,
                new_sources=new_sources,
                weights=state.weights,
                weight_delta=self._last_weight_delta,
                window_advances=self.window_advances,
                decay_applications=self.decay_applications,
            ))
        return states_to_truth_table(chunk, states)


@dataclass
class ICRHResult:
    """Output of a full-stream I-CRH run."""

    result: TruthDiscoveryResult
    #: ``(T, K)`` source weights after each chunk
    weight_history: np.ndarray
    #: number of objects per chunk
    chunk_sizes: tuple[int, ...]

    @property
    def truths(self) -> TruthTable:
        return self.result.truths

    @property
    def weights(self) -> np.ndarray:
        return self.result.weights


def icrh(dataset, window: int = 1,
         config: ICRHConfig | None = None,
         tracer: Tracer | None = None,
         profiler: Profiler | None = None) -> ICRHResult:
    """Run I-CRH over a timestamped dataset, chunking by time window.

    ``dataset`` may be dense or sparse; it is resolved once through the
    config's ``backend`` selector and chunk views inherit that
    representation.  Returns the stitched truth table over all objects
    (aligned with ``dataset``), the final weights, and the per-chunk
    weight history.  The result is stamped with the resolved
    ``backend``/``backend_reason``, and ``converged`` reports whether
    the final chunk's weight delta fell below ``config.tol``.  With a
    tracer, emits ``run_start``, one ``chunk`` record per window, and a
    ``run_end`` carrying the stream counters.  With a profiler, every
    chunk's phase/kernel timings accumulate and (when also tracing)
    flush into the trace as ``profile`` records.
    """
    started = time.perf_counter()
    config = config or ICRHConfig()
    backend = make_backend(dataset, config.backend)
    dataset = backend.data
    model = IncrementalCRH(config, tracer=tracer, profiler=profiler)
    tracing = tracer is not None and tracer.enabled
    if tracing:
        tracer.emit(run_started(
            "I-CRH",
            n_sources=dataset.n_sources,
            n_objects=dataset.n_objects,
            n_properties=len(dataset.schema),
            backend=backend.name,
            backend_reason=backend.resolution,
            n_claims=backend.n_claims(),
        ))
    columns: list[np.ndarray] = []
    for prop in dataset.schema:
        if prop.uses_codec:
            columns.append(
                np.full(dataset.n_objects, MISSING_CODE, dtype=np.int32)
            )
        else:
            columns.append(np.full(dataset.n_objects, np.nan))
    chunk_sizes: list[int] = []
    for chunk in chunk_by_window(dataset, window):
        chunk_truths = model.partial_fit(chunk.dataset)
        chunk_sizes.append(chunk.dataset.n_objects)
        with span(model.profiler, "stitch"):
            for m in range(len(dataset.schema)):
                columns[m][chunk.object_indices] = \
                    chunk_truths.columns[m]
    truths = TruthTable(
        schema=dataset.schema,
        object_ids=dataset.object_ids,
        columns=columns,
        codecs=dataset.codecs(),
    )
    elapsed = time.perf_counter() - started
    converged = (model.last_weight_delta is not None
                 and model.last_weight_delta <= config.tol)
    if tracing:
        if model.profiler is not None:
            model.profiler.flush_to(tracer)
        tracer.emit(run_finished(
            iterations=model.chunks_seen,
            converged=converged,
            elapsed_seconds=elapsed,
            window_advances=model.window_advances,
            decay_applications=model.decay_applications,
        ))
    result = TruthDiscoveryResult(
        truths=truths,
        weights=model.weights,
        source_ids=dataset.source_ids,
        method="I-CRH",
        iterations=model.chunks_seen,
        converged=converged,
        elapsed_seconds=elapsed,
        backend=backend.name,
        backend_reason=backend.resolution,
    )
    return ICRHResult(
        result=result,
        weight_history=model.weight_history,
        chunk_sizes=tuple(chunk_sizes),
    )
