"""Streaming truth discovery: incremental CRH and the serving layer.

Two consumption styles share one layered stack (Section 2.6 /
Algorithm 2):

* batch-over-stream — :func:`icrh` chunks a timestamped dataset by
  time window and runs :class:`IncrementalCRH` chunk by chunk;
* long-lived serving — :class:`TruthService` ingests claims one at a
  time (:class:`Claim`), seals windows as they complete, serves warm
  truths/weights, and snapshots/restores its full state; and
* concurrent serving — :class:`ShardedTruthService` routes object
  keys across per-shard ``TruthService`` instances under one global
  weight plane, with optional async ingest workers and lock-free
  snapshot reads (``docs/ARCHITECTURE.md``, "Concurrent serving").

The layers underneath: :class:`ClaimStore` (appendable claim index +
dirty set), :class:`~repro.streaming.state.TruthState` /
:class:`~repro.streaming.state.TruthCache` (accumulators, weights,
versioned truth cache) and :class:`RecomputePlanner` (dirty-set
re-resolution through the shared segment kernels).
"""

from .concurrent import (
    SHARD_POLICIES,
    BackpressureError,
    IngestWorkerError,
    MergedRegistryView,
    ShardedTruthService,
    shard_policy_by_name,
)
from .icrh import ICRHConfig, ICRHResult, IncrementalCRH, icrh
from .planner import RecomputePlan, RecomputePlanner
from .service import (
    IngestReport,
    TruthService,
    TruthSnapshot,
    as_claim,
    iter_dataset_claims,
)
from .state import TruthCache, TruthState
from .store import Claim, ClaimStore, GrowableArray
from .windows import StreamChunk, chunk_by_window, n_chunks

__all__ = [
    "BackpressureError",
    "Claim",
    "ClaimStore",
    "GrowableArray",
    "ICRHConfig",
    "ICRHResult",
    "IncrementalCRH",
    "IngestReport",
    "IngestWorkerError",
    "MergedRegistryView",
    "RecomputePlan",
    "RecomputePlanner",
    "SHARD_POLICIES",
    "ShardedTruthService",
    "StreamChunk",
    "TruthCache",
    "TruthService",
    "TruthSnapshot",
    "TruthState",
    "as_claim",
    "chunk_by_window",
    "icrh",
    "iter_dataset_claims",
    "n_chunks",
    "shard_policy_by_name",
]
