"""Streaming truth discovery: incremental CRH (Section 2.6)."""

from .icrh import ICRHConfig, ICRHResult, IncrementalCRH, icrh
from .windows import StreamChunk, chunk_by_window, n_chunks

__all__ = [
    "ICRHConfig",
    "ICRHResult",
    "IncrementalCRH",
    "StreamChunk",
    "chunk_by_window",
    "icrh",
    "n_chunks",
]
