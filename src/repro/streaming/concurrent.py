"""Concurrent truth serving: sharded router plus async ingest front.

``TruthService`` is single-threaded by design; this module scales it
across cores without giving up the replay-equivalence contract the
serving stack is tested against.  Three pieces compose:

* :class:`ShardedTruthService` — a router that partitions object keys
  across N :class:`~repro.streaming.service.TruthService` shards
  (policies in :data:`SHARD_POLICIES`), each guarded by its own lock so
  ingest on one shard never blocks reads on another.
* an **async ingest front** — per-worker bounded FIFO queues drained by
  a thread pool, with block/reject backpressure, drain/flush semantics
  and retry-on-shard-busy lock acquisition.
* **snapshot-isolated reads** — every shard publishes copy-on-write
  :class:`~repro.streaming.service.TruthSnapshot` views, so
  :meth:`ShardedTruthService.read_truth` is lock-free and can never
  observe a torn truth state.

Shared weight plane, sharded data plane
---------------------------------------
The paper's MapReduce formulation (Section 2.7) partitions *claims* but
keeps one global weight estimate; the router does the same.  Shards
hold claims, caches and dirty sets; the router owns the single
Algorithm-2 model, the global window clock (pending timestamps, sealed
high-water mark, the late-claim rule) and the global source registry.
A window seal replays the window's buffered claims through a scratch
:class:`~repro.streaming.store.ClaimStore` seeded with the global
source registry and the shared codecs — the *identical* code path the
unsharded service runs — so sealed truths and weight trajectories are
bit-identical to a single ``TruthService`` regardless of shard count,
and regardless of sync vs. threaded ingest once the queues are drained
(the equivalence oracle ``tests/test_concurrent_serving.py`` fuzzes).

What is and is not linearizable is documented in
``docs/ARCHITECTURE.md`` ("Concurrent serving"); the short version:
:meth:`ShardedTruthService.get_truth` is read-your-writes per shard
under the shard lock, :meth:`ShardedTruthService.read_truth` serves the
latest *published* snapshot (bounded staleness, never torn), and
cross-shard reads are per-shard consistent but not a global snapshot.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import replace
from pathlib import Path
from typing import Callable, Hashable, Iterable

import numpy as np

from ..data.encoding import CategoricalCodec
from ..data.schema import DatasetSchema
from ..data.table import TruthTable
from ..observability import ingest_record, read_record
from ..observability.metrics import MetricsRegistry
from ..observability.tracer import Tracer
from .icrh import ICRHConfig, IncrementalCRH
from .planner import RecomputePlanner
from .service import (
    SNAPSHOT_SCHEMA,
    IngestReport,
    TruthService,
    _config_from_dict,
    _config_to_dict,
    as_claim,
)
from .store import Claim, ClaimStore

#: objects per contiguous block of the ``range`` policy — the streaming
#: analogue of :func:`repro.mapreduce.partitioner.range_partition`'s
#: contiguous row ranges (arrival-order blocks cycle across shards).
RANGE_BLOCK = 64


def _hash_policy(object_id: Hashable, global_index: int,
                 n_shards: int) -> int:
    """Stable content hash of the object id (crc32 of its ``str``).

    ``zlib.crc32`` rather than ``hash()``: Python's builtin hash is
    salted per process, which would misroute every object after a
    snapshot/restore into a fresh interpreter.
    """
    return zlib.crc32(str(object_id).encode("utf-8")) % n_shards


def _mod_policy(object_id: Hashable, global_index: int,
                n_shards: int) -> int:
    """Round-robin by global first-appearance order (perfect balance)."""
    return global_index % n_shards


def _range_policy(object_id: Hashable, global_index: int,
                  n_shards: int) -> int:
    """Contiguous arrival-order blocks of :data:`RANGE_BLOCK` objects,
    cycling across shards — locality-preserving contiguous ranges, the
    streaming analogue of
    :func:`~repro.mapreduce.partitioner.range_partition`."""
    return (global_index // RANGE_BLOCK) % n_shards


#: shard-policy registry: name -> ``(object_id, global_index, n_shards)
#: -> shard``.  All policies are deterministic functions of the id and
#: its global first-appearance index, so routing survives
#: snapshot/restore.
SHARD_POLICIES: dict[str, Callable[[Hashable, int, int], int]] = {
    "hash": _hash_policy,
    "mod": _mod_policy,
    "range": _range_policy,
}


def shard_policy_by_name(name: str) -> Callable[[Hashable, int, int], int]:
    """Look up a shard policy; unknown names list the valid ones.

    Mirrors :func:`repro.baselines.resolver_by_name`'s error hygiene:
    the exception names every accepted policy so a typo is
    self-correcting.
    """
    policy = SHARD_POLICIES.get(name)
    if policy is None:
        known = ", ".join(sorted(SHARD_POLICIES))
        raise ValueError(
            f"unknown shard policy {name!r}; valid policies: {known}"
        )
    return policy


def _json_default(value):
    """JSON fallback for numpy scalars inside buffered claims."""
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(
        f"Object of type {type(value).__name__} is not JSON serializable"
    )


class BackpressureError(RuntimeError):
    """Raised by reject-mode ingest when a worker queue is full.

    The whole batch is rejected atomically *before* any routing
    bookkeeping, so a rejected batch leaves the service exactly as it
    was — resubmit the same batch later.
    """


class IngestWorkerError(RuntimeError):
    """An ingest worker task failed; ``__cause__`` is the original
    exception.  Raised at the next ``ingest``/``drain``/``flush``/
    ``close`` call after the failure (workers keep draining their
    queue so the service stays shutdown-able)."""


class _ServingStateHolder:
    """One shard's last-delivered global serving state.

    ``current`` is an immutable ``(source_ids, weights, epoch)`` triple
    swapped atomically by seal/drain/state tasks, so shard-local
    resolution always runs under a consistent copy of the router's
    global Algorithm-2 weights — never a mid-update view.
    """

    __slots__ = ("current",)

    def __init__(self) -> None:
        self.current: tuple = ((), np.ones(0), 0)


def _shard_state_hook(shard: TruthService,
                      holder: _ServingStateHolder) -> Callable:
    """Build the ``_external_state`` hook projecting the holder's
    global weights onto the shard store's source positions (sources the
    global model has not seen carry the Algorithm-2 line-1 weight 1)."""
    def state() -> tuple[np.ndarray, int]:
        ids, weights, epoch = holder.current
        by_id = dict(zip(ids, weights))
        projected = np.fromiter(
            (by_id.get(sid, 1.0) for sid in shard.store.source_ids),
            dtype=np.float64, count=shard.store.n_sources,
        )
        return projected, epoch
    return state


class _IngestWorker(threading.Thread):
    """One ingest worker: a bounded FIFO queue plus the drain loop.

    Each shard is statically assigned to exactly one worker
    (``shard % n_workers``), so per-shard task order is the enqueue
    order — the property that makes drained async ingest bit-identical
    to synchronous ingest.
    """

    def __init__(self, router: "ShardedTruthService", index: int,
                 queue_size: int) -> None:
        super().__init__(name=f"truth-ingest-{index}", daemon=True)
        self.queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._router = router

    def run(self) -> None:
        """Drain tasks until the ``None`` sentinel arrives.

        Task exceptions are recorded on the router (surfaced as
        :class:`IngestWorkerError` at the next API call) and the loop
        continues, so a poisoned task never wedges the queue.
        """
        while True:
            task = self.queue.get()
            try:
                if task is None:
                    return
                self._router._execute(task)
            except BaseException as error:  # noqa: BLE001 - surfaced later
                self._router._record_worker_error(error, task)
            finally:
                self.queue.task_done()


class MergedRegistryView:
    """Registry facade that re-merges router + shard metrics per call.

    Exposes the read surface exporters use (``snapshot()``,
    ``to_prometheus()``, ``enabled``) while delegating each call to a
    fresh :meth:`ShardedTruthService.merged_registry`, so a long-lived
    exporter always renders the shards' *current* counters.
    """

    def __init__(self, service: "ShardedTruthService") -> None:
        self._service = service

    @property
    def enabled(self) -> bool:
        """Whether the underlying router registry records metrics."""
        return self._service.registry.enabled

    def snapshot(self) -> dict:
        """A fresh merged snapshot of router + shard registries."""
        return self._service.merged_registry().snapshot()

    def to_prometheus(self) -> str:
        """The merged registry in Prometheus text exposition format."""
        return self._service.merged_registry().to_prometheus()


class ShardedTruthService:
    """Hash/range-partitioned truth serving over N ``TruthService``
    shards with one global Algorithm-2 weight plane.

    >>> service = ShardedTruthService(schema, n_shards=4, window=2,
    ...                               codecs=dataset.codecs())
    >>> service.ingest(iter_dataset_claims(dataset))
    >>> service.flush()
    >>> truths = service.get_truth(dataset.object_ids[:10])

    ``ingest_threads=0`` (the default) routes and applies everything on
    the calling thread; ``ingest_threads=T`` starts T workers with
    bounded FIFO queues — ``backpressure`` picks what a full queue does
    (``"block"`` the producer, or ``"reject"`` the whole batch with
    :class:`BackpressureError`).  Results are invariant to shard count,
    policy, and ingest mode (after :meth:`drain`): each equals a single
    unsharded ``TruthService`` fed the same claims, bit for bit.

    One router call at a time: ``ingest``/``flush``/``snapshot`` are
    serialized by an internal producer lock (concurrent *reads* run
    freely against the shard locks / published snapshots).
    """

    def __init__(self, schema: DatasetSchema, *, n_shards: int = 2,
                 window: int = 1, config: ICRHConfig | None = None,
                 codecs=None, policy: str = "hash",
                 ingest_threads: int = 0, queue_size: int = 256,
                 backpressure: str = "block",
                 lock_timeout: float = 0.05,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if ingest_threads < 0:
            raise ValueError(
                f"ingest_threads must be >= 0, got {ingest_threads}")
        if backpressure not in ("block", "reject"):
            raise ValueError(
                f"backpressure must be 'block' or 'reject', "
                f"got {backpressure!r}"
            )
        self.schema = schema
        self.n_shards = int(n_shards)
        self.window = int(window)
        self.config = config or ICRHConfig()
        self.policy_name = policy
        self._policy = shard_policy_by_name(policy)
        self.backpressure = backpressure
        self.tracer = tracer
        self._lock_timeout = float(lock_timeout)
        self.registry = metrics if metrics is not None else MetricsRegistry()
        enabled = self.registry.enabled
        # One shared codec object per categorical property: shards and
        # the seal-time scratch store all encode through the same
        # first-seen label order, so codes are global.
        self._codecs: dict[str, CategoricalCodec] = {}
        seed = dict(codecs or {})
        for prop in schema:
            if prop.uses_codec:
                prior = seed.get(prop.name)
                labels = prior.labels if prior is not None else ()
                self._codecs[prop.name] = CategoricalCodec(labels)
        self._prop_names = {prop.name for prop in schema}
        # Shards: window bookkeeping disabled (the router seals), own
        # registries (merged with shard=<i> labels), planner escalation
        # off (the router mirrors the global planner's decision).
        self._shards: list[TruthService] = []
        self._holders: list[_ServingStateHolder] = []
        self._locks = [threading.RLock() for _ in range(self.n_shards)]
        for _ in range(self.n_shards):
            shard = TruthService(
                schema, window=self.window, config=self.config,
                metrics=MetricsRegistry(enabled=enabled),
                planner=RecomputePlanner(full_fraction=1.0),
            )
            shard._store._codecs = self._codecs
            holder = _ServingStateHolder()
            shard._external_state = _shard_state_hook(shard, holder)
            self._shards.append(shard)
            self._holders.append(holder)
        # Global weight plane (the one Algorithm-2 model) and planner.
        serving_config = (self.config if self.config.backend == "sparse"
                          else replace(self.config, backend="sparse"))
        self._model = IncrementalCRH(serving_config)
        self._planner = RecomputePlanner()
        # Global registries the routing producer owns.
        self._source_ids: list[Hashable] = []
        self._source_index: dict[Hashable, int] = {}
        self._object_ids: list[Hashable] = []
        self._object_index: dict[Hashable, int] = {}
        #: gidx -> (shard, shard-local object index), mirrored at route
        #: time so seals can address shard stores before workers absorb
        self._locations: list[tuple[int, int]] = []
        self._shard_sizes = [0] * self.n_shards
        self._shard_claims = [0] * self.n_shards
        self._pending: dict[float, list[int]] = {}
        self._window_claims: dict[int, list[Claim]] = {}
        self._sealed_high: float | None = None
        self._dirty: set[int] = set()
        self._ingest_lock = threading.Lock()
        self._errors: list[IngestWorkerError] = []
        self._closed = False
        registry = self.registry
        self._c_submitted = registry.counter("submitted_claims")
        self._c_rejected = registry.counter("rejected_claims")
        self._c_retries = registry.counter("shard_busy_retries")
        self._c_sealed = registry.counter("windows_sealed")
        self._g_queue_depth = registry.gauge("queue_depth")
        self._g_imbalance = registry.gauge("shard_imbalance")
        self._h_lock_wait = [
            registry.histogram("lock_wait_seconds", shard=str(s))
            for s in range(self.n_shards)
        ]
        self.ingest_mode = "threads" if ingest_threads else "sync"
        self._workers: list[_IngestWorker] = []
        for index in range(ingest_threads):
            worker = _IngestWorker(self, index, queue_size)
            worker.start()
            self._workers.append(worker)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> tuple[TruthService, ...]:
        """The underlying per-shard services (read-mostly introspection)."""
        return tuple(self._shards)

    @property
    def source_ids(self) -> tuple:
        """Sources seen so far, in global first-appearance order."""
        return tuple(self._source_ids)

    @property
    def object_ids(self) -> tuple:
        """Objects seen so far, in global first-appearance order."""
        return tuple(self._object_ids)

    @property
    def n_objects(self) -> int:
        """Objects seen so far across all shards."""
        return len(self._object_ids)

    @property
    def n_sources(self) -> int:
        """Sources seen so far across all shards."""
        return len(self._source_ids)

    def shard_of(self, object_id: Hashable) -> int:
        """Which shard serves ``object_id`` (KeyError if never claimed)."""
        return self._locations[self._object_index[object_id]][0]

    def _tracing(self) -> bool:
        return self.tracer is not None and self.tracer.enabled

    # ------------------------------------------------------------------
    # locks, workers, dispatch
    # ------------------------------------------------------------------
    @contextmanager
    def _acquire(self, shard_index: int):
        """Acquire a shard lock with retry-on-busy accounting.

        Each timed-out acquisition attempt increments
        ``shard_busy_retries`` and retries in place (re-queuing would
        reorder the shard's FIFO); the total wait lands in the
        per-shard ``lock_wait_seconds`` histogram.
        """
        lock = self._locks[shard_index]
        started = time.perf_counter()
        while not lock.acquire(timeout=self._lock_timeout):
            self._c_retries.inc()
        self._h_lock_wait[shard_index].observe(
            time.perf_counter() - started)
        try:
            yield
        finally:
            lock.release()

    def _record_worker_error(self, error: BaseException, task) -> None:
        """Capture a worker task failure for the next API call."""
        kind = task[0] if isinstance(task, tuple) and task else "?"
        wrapped = IngestWorkerError(
            f"ingest worker failed on a {kind!r} task: {error!r}"
        )
        wrapped.__cause__ = error
        self._errors.append(wrapped)

    def _raise_worker_errors(self) -> None:
        """Raise the first recorded worker failure, if any."""
        if self._errors:
            raise self._errors[0]

    def _worker_for(self, shard_index: int) -> _IngestWorker:
        return self._workers[shard_index % len(self._workers)]

    def _dispatch(self, task) -> None:
        """Run a shard task: enqueue to its worker, or execute inline."""
        if self._workers:
            self._worker_for(task[1]).queue.put(task)
        else:
            self._execute(task)

    def _execute(self, task) -> None:
        """Execute one shard task under that shard's lock.

        Tasks (``shard`` is the shard index everywhere):

        * ``("absorb", shard, claims)`` — append claims to the shard
          store (dirty-marking only; no sealing).
        * ``("seal", shard, local_indices, columns, state)`` — install
          router-computed sealed truths and deliver the post-seal
          global serving state.
        * ``("state", shard, state)`` — deliver the serving state only
          (shards untouched by a seal still see the new weights).
        * ``("drain", shard, scope, state)`` — recompute under the
          delivered state: the shard's dirty set (``scope="dirty"``) or
          every object (``scope="full"``, mirroring the global
          planner's escalation).
        """
        kind = task[0]
        shard_index = task[1]
        shard = self._shards[shard_index]
        holder = self._holders[shard_index]
        with self._acquire(shard_index):
            if kind == "absorb":
                shard.absorb(task[2])
            elif kind == "seal":
                _, _, local_indices, columns, state = task
                holder.current = state
                shard.apply_seal(local_indices, columns,
                                 version=state[2])
            elif kind == "state":
                holder.current = task[2]
            elif kind == "drain":
                _, _, scope, state = task
                holder.current = state
                if scope == "full":
                    shard.recompute_all()
                else:
                    shard.drain_dirty()
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown ingest task kind {kind!r}")

    def _captured_state(self) -> tuple:
        """An immutable copy of the global serving state, for tasks."""
        state = self._model.state
        return (tuple(state.source_ids), state.weights.copy(),
                state.epoch)

    def _queue_depth(self) -> int:
        return sum(w.queue.qsize() for w in self._workers)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, claims: Iterable) -> IngestReport:
        """Route a batch of claims across the shards.

        Mirrors :meth:`TruthService.ingest` exactly: the router runs
        the same per-claim window bookkeeping (pending stamps, mid-
        batch sealing, the late-claim rule), seals windows through the
        shared global model, and dispatches a dirty recompute after the
        batch.  With worker threads the shard-side work is enqueued and
        the call returns once routing is done — ``recomputed_objects``
        counts the objects *scheduled* for recomputation (the work
        completes asynchronously; :meth:`drain` waits for it).  In
        reject backpressure mode a
        full worker queue rejects the *whole batch* up front with
        :class:`BackpressureError`.
        """
        with self._ingest_lock:
            self._raise_worker_errors()
            if self._closed:
                raise RuntimeError("service is closed")
            batch = [as_claim(item) for item in claims]
            if (self.backpressure == "reject" and self._workers
                    and any(w.queue.full() for w in self._workers)):
                self._c_rejected.inc(len(batch))
                raise BackpressureError(
                    f"ingest queue full ({len(batch)} claims rejected); "
                    f"drain or retry later"
                )
            started = time.perf_counter()
            k_before = len(self._source_ids)
            buffers: list[list[Claim]] = [[] for _ in self._shards]
            absorbed = 0
            new_objects = 0
            sealed = 0
            for claim in batch:
                if claim.timestamp is None:
                    raise ValueError(
                        "claims need timestamps to drive window "
                        "sealing; got None for object "
                        f"{claim.object_id!r}"
                    )
                if claim.property_name not in self._prop_names:
                    raise ValueError(
                        f"unknown property {claim.property_name!r}; "
                        f"schema has {sorted(self._prop_names)}"
                    )
                if claim.source_id not in self._source_index:
                    self._source_index[claim.source_id] = len(
                        self._source_ids)
                    self._source_ids.append(claim.source_id)
                codec = self._codecs.get(claim.property_name)
                if codec is not None:
                    codec.encode(claim.value)
                gidx = self._object_index.get(claim.object_id)
                created = gidx is None
                pended = False
                if created:
                    gidx = len(self._object_ids)
                    self._object_ids.append(claim.object_id)
                    self._object_index[claim.object_id] = gidx
                    shard_index = self._policy(
                        claim.object_id, gidx, self.n_shards) % \
                        self.n_shards
                    self._locations.append(
                        (shard_index, self._shard_sizes[shard_index]))
                    self._shard_sizes[shard_index] += 1
                    new_objects += 1
                    stamp = float(claim.timestamp)
                    if (self._sealed_high is not None
                            and stamp <= self._sealed_high):
                        pass  # late object: dirty-only, never pends
                    else:
                        self._pending.setdefault(stamp, []).append(gidx)
                        self._window_claims[gidx] = []
                        pended = True
                shard_index = self._locations[gidx][0]
                if gidx in self._window_claims:
                    self._window_claims[gidx].append(claim)
                buffers[shard_index].append(claim)
                self._shard_claims[shard_index] += 1
                self._dirty.add(gidx)
                absorbed += 1
                if pended:
                    while len(self._pending) > self.window:
                        self._flush_buffers(buffers)
                        self._seal_global(
                            sorted(self._pending)[:self.window])
                        sealed += 1
            self._flush_buffers(buffers)
            dirty_after = len(self._dirty)
            recomputed = self._dispatch_drains()
            elapsed = time.perf_counter() - started
            self._c_submitted.inc(absorbed)
            self._update_gauges()
            report = IngestReport(
                ingested_claims=absorbed,
                new_objects=new_objects,
                new_sources=len(self._source_ids) - k_before,
                windows_sealed=sealed,
                dirty_objects=dirty_after,
                recomputed_objects=recomputed,
                elapsed_seconds=elapsed,
            )
            if self._tracing():
                self.tracer.emit(ingest_record(
                    ingested_claims=report.ingested_claims,
                    new_objects=report.new_objects,
                    new_sources=report.new_sources,
                    windows_sealed=report.windows_sealed,
                    dirty_objects=report.dirty_objects,
                    recomputed_objects=report.recomputed_objects,
                    elapsed_seconds=elapsed,
                    n_shards=self.n_shards,
                    ingest_mode=self.ingest_mode,
                ))
            return report

    def _flush_buffers(self, buffers: list[list[Claim]]) -> None:
        """Dispatch the accumulated per-shard claim runs as absorb
        tasks (always *before* any seal, so FIFO order guarantees the
        shard store holds every window claim when the seal applies)."""
        for shard_index, run in enumerate(buffers):
            if run:
                self._dispatch(("absorb", shard_index, run))
                buffers[shard_index] = []

    def _seal_global(self, window_ts) -> None:
        """Seal one window through the shared global model.

        Replays the window objects' buffered claims into a scratch
        :class:`~repro.streaming.store.ClaimStore` that is seeded with
        the shared codecs and the *global* source registry (so source
        positions and categorical codes match the unsharded store),
        runs ``partial_fit`` on the resulting chunk — the identical
        Algorithm-2 step a single ``TruthService`` would run — and
        scatters the chunk-final truths back to the owning shards.
        """
        objects: list[int] = []
        for stamp in sorted(window_ts):
            objects.extend(self._pending.pop(stamp))
        scratch = ClaimStore(self.schema)
        scratch._codecs = self._codecs
        for source_id in self._source_ids:
            scratch.source_position(source_id)
        for gidx in objects:
            for claim in self._window_claims.pop(gidx):
                scratch.add(claim)
        indices = np.arange(len(objects), dtype=np.int64)
        chunk = scratch.dataset_for(indices)
        truths = self._model.partial_fit(chunk)
        state = self._captured_state()
        rows_by_shard: dict[int, tuple[list[int], list[int]]] = {}
        for row, gidx in enumerate(objects):
            shard_index, local = self._locations[gidx]
            rows, locals_ = rows_by_shard.setdefault(
                shard_index, ([], []))
            rows.append(row)
            locals_.append(local)
        for shard_index in range(self.n_shards):
            entry = rows_by_shard.get(shard_index)
            if entry is None:
                self._dispatch(("state", shard_index, state))
                continue
            rows, locals_ = entry
            take = np.asarray(rows, dtype=np.int64)
            columns = [np.asarray(col)[take] for col in truths.columns]
            self._dispatch((
                "seal", shard_index,
                np.asarray(locals_, dtype=np.int64), columns, state,
            ))
        self._dirty.difference_update(objects)
        high = float(max(window_ts))
        self._sealed_high = (high if self._sealed_high is None
                             else max(self._sealed_high, high))
        self._c_sealed.inc()

    def _dispatch_drains(self) -> int:
        """Plan the post-batch recompute globally and dispatch it.

        Uses the same :class:`RecomputePlanner` decision a single
        ``TruthService`` would make over the union dirty set: ``full``
        escalation recomputes every shard entirely, ``dirty`` drains
        each shard's own dirty objects.  Returns the number of objects
        scheduled (synchronously recomputed when there are no
        workers).
        """
        if not self._dirty:
            return 0
        plan = self._planner.plan(self._dirty, len(self._object_ids))
        if plan.scope == "none":
            return 0
        state = self._captured_state()
        if plan.scope == "full":
            targets = range(self.n_shards)
            scheduled = len(self._object_ids)
        else:
            targets = sorted({self._locations[gidx][0]
                              for gidx in self._dirty})
            scheduled = plan.n_objects
        for shard_index in targets:
            self._dispatch(("drain", shard_index, plan.scope, state))
        self._dirty.clear()
        return scheduled

    def drain(self) -> None:
        """Block until every queued ingest task has been applied.

        After ``drain`` returns, shard stores, caches and published
        snapshots reflect every prior :meth:`ingest` call — the point
        at which threaded ingest is bit-identical to sync ingest.
        Raises :class:`IngestWorkerError` if any task failed.
        """
        for worker in self._workers:
            worker.queue.join()
        self._update_gauges()
        self._raise_worker_errors()

    def flush(self) -> int:
        """Drain, then seal every pending window (end of stream).

        Mirrors :meth:`TruthService.flush`: repeatedly seals the
        oldest ``window`` pending timestamps through the global model.
        Returns how many windows were sealed.
        """
        with self._ingest_lock:
            self.drain()
            sealed = 0
            while self._pending:
                self._seal_global(sorted(self._pending)[:self.window])
                sealed += 1
            self.drain()
            self._update_gauges()
            return sealed

    def recompute_all(self) -> int:
        """Re-resolve every object on every shard under the current
        global weights; returns how many objects were resolved."""
        with self._ingest_lock:
            self.drain()
            state = self._captured_state()
            for shard_index in range(self.n_shards):
                self._dispatch(("drain", shard_index, "full", state))
            self._dirty.clear()
            self.drain()
            return len(self._object_ids)

    def close(self) -> None:
        """Drain outstanding work and stop the worker threads.

        Idempotent; raises :class:`IngestWorkerError` if any queued
        task failed.  Further ``ingest`` calls raise.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.queue.join()
        for worker in self._workers:
            worker.queue.put(None)
        for worker in self._workers:
            worker.join()
        self._raise_worker_errors()

    def __enter__(self) -> "ShardedTruthService":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the worker pool."""
        self.close()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _group_by_shard(self, ids: list) -> dict[int, list[int]]:
        """Input positions grouped by owning shard (KeyError on
        unknown ids, matching the unsharded service)."""
        groups: dict[int, list[int]] = {}
        for position, object_id in enumerate(ids):
            gidx = self._object_index.get(object_id)
            if gidx is None:
                raise KeyError(object_id)
            groups.setdefault(self._locations[gidx][0],
                              []).append(position)
        return groups

    def _assemble(self, ids: list,
                  per_shard: dict[int, tuple[list[int], TruthTable]],
                  ) -> TruthTable:
        """Merge per-shard truth tables back into input order."""
        columns: list[np.ndarray] = []
        for m, prop in enumerate(self.schema):
            if prop.uses_codec:
                column = np.full(len(ids), -1, dtype=np.int32)
            else:
                column = np.full(len(ids), np.nan, dtype=np.float64)
            for positions, table in per_shard.values():
                column[np.asarray(positions, dtype=np.int64)] = \
                    table.columns[m]
            columns.append(column)
        return TruthTable(
            schema=self.schema,
            object_ids=ids,
            columns=columns,
            codecs=dict(self._codecs),
        )

    def get_truth(self, object_ids: Iterable) -> TruthTable:
        """Fresh truths for ``object_ids`` (read-your-writes per shard).

        Groups the ids by owning shard and serves each group through
        its shard's :meth:`TruthService.get_truth` under that shard's
        lock — dirty objects are resolved on demand under the shard's
        last-delivered global weights.  With threaded ingest, claims
        still queued are not yet visible; call :meth:`drain` first for
        a fully up-to-date read.
        """
        started = time.perf_counter()
        ids = list(object_ids)
        groups = self._group_by_shard(ids)
        per_shard: dict[int, tuple[list[int], TruthTable]] = {}
        for shard_index, positions in groups.items():
            wanted = [ids[p] for p in positions]
            with self._acquire(shard_index):
                table = self._shards[shard_index].get_truth(wanted)
            per_shard[shard_index] = (positions, table)
        result = self._assemble(ids, per_shard)
        if self._tracing():
            self.tracer.emit(read_record(
                read_objects=len(ids),
                elapsed_seconds=time.perf_counter() - started,
                n_shards=self.n_shards,
                ingest_mode=self.ingest_mode,
            ))
        return result

    def read_truth(self, object_ids: Iterable) -> TruthTable:
        """Snapshot-isolated truths for ``object_ids`` — lock-free.

        Serves each shard's latest *published*
        :class:`~repro.streaming.service.TruthSnapshot`: no lock is
        taken, no resolution runs, and a concurrent seal or recompute
        can never tear a value.  Ids routed to a shard but not yet in
        its published snapshot raise ``KeyError`` (bounded staleness —
        ingest publishes at batch boundaries).
        """
        ids = list(object_ids)
        groups = self._group_by_shard(ids)
        per_shard = {
            shard_index: (positions,
                          self._shards[shard_index].read_truth(
                              [ids[p] for p in positions]))
            for shard_index, positions in groups.items()
        }
        return self._assemble(ids, per_shard)

    def get_weights(self) -> np.ndarray:
        """Global per-source weights, aligned with :attr:`source_ids`.

        Sources not yet covered by a sealed window carry the
        Algorithm-2 line-1 weight of 1 — identical to
        :meth:`TruthService.get_weights` on an unsharded service fed
        the same stream.
        """
        weights = np.ones(len(self._source_ids))
        k = self._model.state.n_sources
        if k:
            weights[:k] = self._model.state.weights
        return weights

    def weights_by_source(self) -> dict:
        """Weights keyed by source id (convenience for reporting)."""
        return dict(zip(self._source_ids, self.get_weights()))

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _update_gauges(self) -> None:
        """Refresh the router's queue/imbalance/SLO gauges."""
        registry = self.registry
        if not registry.enabled:
            return
        self._g_queue_depth.set(self._queue_depth())
        claims = self._shard_claims
        mean = sum(claims) / len(claims)
        self._g_imbalance.set(max(claims) / mean if mean else 0.0)
        # Router-level copies of the serving SLO gauges, so health
        # rules written for an unsharded service keep evaluating.
        registry.gauge("dirty_objects").set(len(self._dirty))
        registry.gauge("pending_timestamps").set(len(self._pending))
        registry.gauge("truth_version").set(self._model.state.epoch)
        drift = self._model.last_weight_delta
        registry.gauge("weight_drift").set(0.0 if drift is None
                                           else drift)

    def registry_view(self) -> "MergedRegistryView":
        """A live exporter-facing view over :meth:`merged_registry`.

        :class:`~repro.observability.export.MetricsExporter` and the
        serve-sim HTTP endpoint hold one registry object and snapshot
        it repeatedly; this view re-merges the router and shard
        registries on every ``snapshot()``/``to_prometheus()`` call so
        exports stay current without re-wiring the exporter.
        """
        return MergedRegistryView(self)

    def merged_registry(self) -> MetricsRegistry:
        """One registry view over the router and every shard.

        Router instruments merge unlabeled; each shard's instruments
        merge with a ``shard=<i>`` label — the same per-source-series
        pattern the process backend uses for ``worker=<pid>``
        partials.  Built fresh per call (shard registries keep
        updating concurrently).
        """
        merged = MetricsRegistry(enabled=self.registry.enabled)
        merged.merge_snapshot(self.registry.snapshot())
        for shard_index, shard in enumerate(self._shards):
            merged.merge_snapshot(
                shard.registry.snapshot(),
                extra_labels={"shard": str(shard_index)},
            )
        return merged

    def metrics(self) -> dict:
        """Aggregated serving counters across the router and shards.

        Every key is a ``docs/OBSERVABILITY.md`` glossary name; the
        per-shard split is available via :meth:`merged_registry`.
        """
        def total(name: str) -> int:
            return int(sum(shard.registry.value(name)
                           for shard in self._shards))

        hits = total("cache_hits")
        misses = total("cache_misses")
        reads = hits + misses
        return {
            "n_shards": self.n_shards,
            "ingest_mode": self.ingest_mode,
            "n_sources": len(self._source_ids),
            "n_objects": len(self._object_ids),
            "n_claims": sum(self._shard_claims),
            "submitted_claims": int(self._c_submitted.value),
            "ingested_claims": total("ingested_claims"),
            "rejected_claims": int(self._c_rejected.value),
            "shard_busy_retries": int(self._c_retries.value),
            "windows_sealed": int(self._c_sealed.value),
            "pending_timestamps": len(self._pending),
            "dirty_objects": len(self._dirty),
            "cached_objects": sum(
                shard._cache.n_cached() for shard in self._shards),
            "recomputed_objects": total("recomputed_objects"),
            "read_objects": total("read_objects"),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": hits / reads if reads else 1.0,
            "snapshot_reads": total("snapshot_reads"),
            "queue_depth": self._queue_depth(),
            "shard_imbalance": float(self._g_imbalance.value),
        }

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def snapshot(self, directory) -> None:
        """Persist the full sharded state under ``directory``.

        Safe under concurrent load: drains the ingest queues, then
        holds every shard lock while writing, so the snapshot is a
        consistent cut.  Layout: one
        :meth:`TruthService.snapshot` directory per shard
        (``shard<i>/``) plus ``router.json`` / ``router_state.npz``
        (global model, window clock, registries, buffered window
        claims).
        """
        with self._ingest_lock:
            self.drain()
            directory = Path(directory)
            directory.mkdir(parents=True, exist_ok=True)
            for lock in self._locks:
                lock.acquire()
            try:
                for shard_index, shard in enumerate(self._shards):
                    shard.snapshot(directory / f"shard{shard_index}")
                state = self._model.state
                history = (state.weight_history()
                           if state.history_length
                           else np.zeros((0, state.n_sources)))
                np.savez(
                    directory / "router_state.npz",
                    accumulated=state.accumulated.copy(),
                    counts=state.counts.copy(),
                    weights=state.weights.copy(),
                    weight_history=history,
                )
                meta = {
                    "snapshot_schema": SNAPSHOT_SCHEMA,
                    "n_shards": self.n_shards,
                    "policy": self.policy_name,
                    "window": self.window,
                    "config": _config_to_dict(self.config),
                    "codec_labels": {
                        name: list(codec.labels)
                        for name, codec in self._codecs.items()
                    },
                    "sources": list(self._source_ids),
                    "objects": list(self._object_ids),
                    "locations": [list(loc) for loc in self._locations],
                    "shard_claims": list(self._shard_claims),
                    "n_state_sources": state.n_sources,
                    "epoch": state.epoch,
                    "chunks_seen": self._model.chunks_seen,
                    "window_advances": self._model.window_advances,
                    "decay_applications": self._model.decay_applications,
                    "sealed_high": self._sealed_high,
                    "pending": [[stamp, objs]
                                for stamp, objs in self._pending.items()],
                    "window_claims": {
                        str(gidx): [list(claim) for claim in claims]
                        for gidx, claims in self._window_claims.items()
                    },
                    "dirty": sorted(int(i) for i in self._dirty),
                    "totals": {
                        "submitted_claims": int(self._c_submitted.value),
                        "rejected_claims": int(self._c_rejected.value),
                        "shard_busy_retries": int(self._c_retries.value),
                        "windows_sealed": int(self._c_sealed.value),
                    },
                }
                (directory / "router.json").write_text(
                    json.dumps(meta, indent=2, default=_json_default))
            finally:
                for lock in self._locks:
                    lock.release()

    @classmethod
    def restore(cls, directory, *, ingest_threads: int = 0,
                tracer: Tracer | None = None,
                metrics: MetricsRegistry | None = None,
                ) -> "ShardedTruthService":
        """Rebuild a sharded service from a :meth:`snapshot` directory.

        ``ingest_threads`` configures the restored async front (the
        snapshot itself is mode-independent — drained state is
        identical either way).
        """
        directory = Path(directory)
        meta = json.loads((directory / "router.json").read_text())
        if meta.get("snapshot_schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported snapshot_schema "
                f"{meta.get('snapshot_schema')!r} in {directory}"
            )
        shards = [
            TruthService.restore(directory / f"shard{i}")
            for i in range(int(meta["n_shards"]))
        ]
        service = cls(
            shards[0].schema,
            n_shards=int(meta["n_shards"]),
            window=int(meta["window"]),
            config=_config_from_dict(meta["config"]),
            policy=meta["policy"],
            ingest_threads=ingest_threads,
            tracer=tracer,
            metrics=metrics,
        )
        # Re-seed the shared codecs with the snapshot's label order and
        # swap the restored shards in (rewiring codecs, planner and the
        # global-state hook the plain restore path does not know about).
        for name, labels in meta.get("codec_labels", {}).items():
            codec = service._codecs.get(name)
            if codec is not None:
                codec._labels = list(labels)
                codec._codes = {
                    label: i for i, label in enumerate(labels)}
        for shard_index, shard in enumerate(shards):
            shard._store._codecs = service._codecs
            shard._planner = RecomputePlanner(full_fraction=1.0)
            holder = service._holders[shard_index]
            shard._external_state = _shard_state_hook(shard, holder)
            service._shards[shard_index] = shard
        bundle = np.load(directory / "router_state.npz")
        k = int(meta["n_state_sources"])
        if k:
            padded = bundle["weight_history"]
            history = []
            for row in padded:
                observed = np.flatnonzero(~np.isnan(row))
                length = int(observed[-1]) + 1 if observed.size else 0
                history.append(row[:length])
            service._model.state.load(
                tuple(meta["sources"])[:k],
                bundle["accumulated"], bundle["counts"],
                bundle["weights"], history, epoch=int(meta["epoch"]),
            )
        service._model._chunks_seen = int(meta["chunks_seen"])
        service._model.window_advances = int(meta["window_advances"])
        service._model.decay_applications = int(
            meta["decay_applications"])
        service._source_ids = list(meta["sources"])
        service._source_index = {
            s: i for i, s in enumerate(service._source_ids)}
        service._object_ids = list(meta["objects"])
        service._object_index = {
            o: i for i, o in enumerate(service._object_ids)}
        service._locations = [
            (int(s), int(local)) for s, local in meta["locations"]]
        service._shard_sizes = [0] * service.n_shards
        for shard_index, _ in service._locations:
            service._shard_sizes[shard_index] += 1
        service._shard_claims = [int(c) for c in meta["shard_claims"]]
        sealed_high = meta.get("sealed_high")
        service._sealed_high = (None if sealed_high is None
                                else float(sealed_high))
        service._pending = {
            float(stamp): [int(i) for i in objs]
            for stamp, objs in meta.get("pending", [])
        }
        service._window_claims = {
            int(gidx): [Claim(*fields) for fields in claims]
            for gidx, claims in meta.get("window_claims", {}).items()
        }
        service._dirty = {int(i) for i in meta.get("dirty", [])}
        for name, value in meta.get("totals", {}).items():
            service.registry.counter(name).inc(float(value))
        state = service._captured_state()
        for holder in service._holders:
            holder.current = state
        for shard in service._shards:
            shard._publish()  # re-publish under the global epoch
        service._update_gauges()
        return service
