"""Streaming truth state: per-source accumulators and the truth cache.

Two state layers back the serving stack:

* :class:`TruthState` — Algorithm 2's per-source sufficient statistics
  (decayed accumulated distances, decayed observation counts, current
  weights) in amortized-growth arrays, plus the per-chunk weight
  history.  :class:`~repro.streaming.icrh.IncrementalCRH` is a thin
  adapter over this class; the O(K^2) ``np.append``-per-source
  registration it replaces lived in ``IncrementalCRH._positions_for``.
* :class:`TruthCache` — a warm per-object truth cache with versioned
  entries.  Each entry records the weight epoch it was resolved under;
  ``-1`` marks never-resolved objects.  Cached truths are *chunk-final*
  (the I-CRH stitching semantics): sealing a window writes that chunk's
  truths, and only new claims (the dirty set) invalidate them — later
  weight updates deliberately do not.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from ..data.encoding import MISSING_CODE
from ..data.schema import DatasetSchema
from .store import GrowableArray


class TruthState:
    """Decayed per-source accumulators, counts, weights and history.

    Sources register in first-appearance order and keep their index for
    the lifetime of the state.  A new source starts with zero
    accumulated distance and weight 1 — exactly Algorithm 2's line-1
    initialization — so registration order never changes any source's
    weight value.
    """

    def __init__(self) -> None:
        self._ids: list[Hashable] = []
        self._index: dict[Hashable, int] = {}
        self._accumulated = GrowableArray(np.float64, 0.0)
        self._counts = GrowableArray(np.float64, 0.0)
        self._weights = GrowableArray(np.float64, 1.0)
        self._history: list[np.ndarray] = []
        #: completed weight refreshes (chunks absorbed)
        self.epoch = 0

    # ------------------------------------------------------------------
    @property
    def n_sources(self) -> int:
        """Number of registered sources."""
        return len(self._ids)

    @property
    def source_ids(self) -> tuple:
        """Registered sources, in first-appearance order."""
        return tuple(self._ids)

    @property
    def accumulated(self) -> np.ndarray:
        """Decayed accumulated distances ``a_k`` (live view)."""
        return self._accumulated.data

    @property
    def counts(self) -> np.ndarray:
        """Decayed observation counts (live view)."""
        return self._counts.data

    @property
    def weights(self) -> np.ndarray:
        """Current per-source weights (live view)."""
        return self._weights.data

    @property
    def growth_events(self) -> int:
        """Buffer reallocations across the three accumulator arrays —
        O(log K) for K sources (the regression guard for the old
        O(K^2) ``np.append`` registration)."""
        return (self._accumulated.growth_events
                + self._counts.growth_events
                + self._weights.growth_events)

    # ------------------------------------------------------------------
    def register(self, source_ids: Sequence[Hashable]) -> np.ndarray:
        """Positions of ``source_ids``, registering first-timers.

        New sources append with ``a_k = 0``, count 0 and weight 1;
        existing sources keep their index.  Amortized O(1) per source.
        """
        positions = np.empty(len(source_ids), dtype=np.int64)
        for i, source_id in enumerate(source_ids):
            index = self._index.get(source_id)
            if index is None:
                index = len(self._ids)
                self._ids.append(source_id)
                self._index[source_id] = index
                self._accumulated.append(0.0)
                self._counts.append(0.0)
                self._weights.append(1.0)
            positions[i] = index
        return positions

    def decay(self, alpha: float) -> None:
        """Decay accumulated distances and counts by ``alpha``
        (Algorithm 2 line 4's historical discount)."""
        self._accumulated.data[:] *= alpha
        self._counts.data[:] *= alpha

    def add_deviations(self, positions: np.ndarray, deviations: np.ndarray,
                       counts: np.ndarray) -> None:
        """Scatter-add a chunk's per-source deviation totals and counts
        into the accumulators at ``positions``."""
        np.add.at(self._accumulated.data, positions, deviations)
        np.add.at(self._counts.data, positions, counts)

    def refresh_weights(self, scheme, normalize_by_counts: bool) -> float:
        """Recompute weights from the accumulators (Algorithm 2 line 5).

        Returns the max absolute per-source weight change.  Sources with
        no surviving observations keep the line-1 weight of 1 rather
        than the best-in-class weight a zero deviation would imply.
        """
        accumulated = self._accumulated.data
        counts = self._counts.data
        previous = self._weights.data.copy()
        if normalize_by_counts:
            with np.errstate(invalid="ignore", divide="ignore"):
                normalized = accumulated / counts
            per_source = np.where(counts > 0, normalized, 0.0)
        else:
            per_source = accumulated
        weights = scheme.weights(per_source)
        unseen = counts <= 1e-12
        if unseen.any():
            weights = np.where(unseen, 1.0, weights)
        self._weights.data[:] = weights
        self.epoch += 1
        return float(np.abs(self._weights.data - previous).max())

    def record_history(self) -> None:
        """Append the current weights to the per-chunk history."""
        self._history.append(self._weights.data.copy())

    @property
    def history_length(self) -> int:
        """Number of recorded history rows (chunks seen)."""
        return len(self._history)

    def weight_history(self) -> np.ndarray:
        """``(T, K)`` weights after each chunk, NaN-padded for sources
        that joined after chunk ``t`` (Fig. 4a semantics)."""
        if not self._history:
            raise ValueError("no chunk processed yet")
        k = len(self._ids)
        padded = np.full((len(self._history), k), np.nan)
        for t, row in enumerate(self._history):
            padded[t, :row.size] = row
        return padded

    def load(self, source_ids: Sequence[Hashable],
             accumulated: np.ndarray, counts: np.ndarray,
             weights: np.ndarray, history: Sequence[np.ndarray],
             epoch: int) -> None:
        """Restore the state from snapshot arrays (see
        :meth:`repro.streaming.service.TruthService.snapshot`)."""
        if self._ids:
            raise ValueError("cannot load into a non-empty TruthState")
        self.register(source_ids)
        self._accumulated.data[:] = accumulated
        self._counts.data[:] = counts
        self._weights.data[:] = weights
        self._history = [np.asarray(row, dtype=np.float64).copy()
                         for row in history]
        self.epoch = int(epoch)


class TruthCache:
    """Warm per-object truth columns with versioned entries.

    One growable column per schema property (``NaN`` / missing-code
    fill) plus an ``int64`` version vector: ``version[i]`` is the
    weight epoch object ``i`` was last resolved under, ``-1`` if never.
    """

    def __init__(self, schema: DatasetSchema) -> None:
        self.schema = schema
        self._columns: list[GrowableArray] = []
        for prop in schema:
            if prop.uses_codec:
                self._columns.append(
                    GrowableArray(np.int32, MISSING_CODE))
            else:
                self._columns.append(GrowableArray(np.float64, np.nan))
        self._versions = GrowableArray(np.int64, -1)

    @property
    def n_objects(self) -> int:
        """Number of object slots the cache covers."""
        return len(self._versions)

    def n_cached(self) -> int:
        """Objects holding a resolved (version >= 0) entry."""
        return int((self._versions.data >= 0).sum())

    def ensure(self, n_objects: int) -> None:
        """Grow to cover ``n_objects`` slots (new slots unresolved)."""
        if n_objects > len(self._versions):
            self._versions.resize_to(n_objects)
            for column in self._columns:
                column.resize_to(n_objects)

    def versions(self, object_indices: np.ndarray) -> np.ndarray:
        """Resolution epochs of the objects at ``object_indices``."""
        return self._versions.data[np.asarray(object_indices)]

    def store(self, object_indices: np.ndarray,
              columns: Sequence[np.ndarray], version: int) -> None:
        """Write resolved truth values for ``object_indices`` at
        weight epoch ``version``.

        Writes go through the columns' copy-on-write path, so views
        handed out by :meth:`publish` keep their values.
        """
        indices = np.asarray(object_indices)
        for cache_col, values in zip(self._columns, columns):
            cache_col.writable()[indices] = values
        self._versions.writable()[indices] = int(version)

    def publish(self) -> tuple[tuple[np.ndarray, ...], np.ndarray]:
        """Freeze the cache into immutable column/version views.

        Returns ``(columns, versions)`` — read-only views a reader can
        keep indefinitely: later :meth:`store` writes copy the backing
        buffers first (copy-on-write), and growth reallocates, so the
        views never change after publication.  This is what lets
        :meth:`repro.streaming.service.TruthService.read_truth` serve
        truths without taking any lock.
        """
        return (tuple(col.freeze_view() for col in self._columns),
                self._versions.freeze_view())

    def columns_at(self, object_indices: np.ndarray) -> list[np.ndarray]:
        """Cached truth columns for ``object_indices`` (copies)."""
        indices = np.asarray(object_indices)
        return [column.data[indices] for column in self._columns]

    def full_columns(self) -> list[np.ndarray]:
        """All cached columns (copies), for snapshotting."""
        return [column.data.copy() for column in self._columns]

    def load(self, columns: Sequence[np.ndarray],
             versions: np.ndarray) -> None:
        """Bulk-restore cached columns and versions from a snapshot."""
        versions = np.asarray(versions, dtype=np.int64)
        self.ensure(int(versions.size))
        self._versions.writable()[:versions.size] = versions
        for cache_col, values in zip(self._columns, columns):
            cache_col.writable()[:len(values)] = values

    def all_versions(self) -> np.ndarray:
        """The whole version vector (copy), for snapshotting."""
        return self._versions.data.copy()
