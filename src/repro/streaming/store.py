"""Appendable claim storage for the truth-serving layer.

The serving stack (``repro.streaming.service``) needs to absorb claims
one at a time without paying a reallocation per arrival.  This module
provides the two pieces that make that cheap:

* :class:`GrowableArray` — an append-only numpy array with amortized
  doubling growth (O(1) amortized appends, O(log n) reallocations),
  shared by the :class:`ClaimStore` claim columns and the
  :class:`~repro.streaming.state.TruthState` per-source accumulators.
* :class:`ClaimStore` — a per-object claim index: every arriving
  :class:`Claim` lands in flat per-property arrays in *insertion order*,
  sources and objects are registered on first appearance, and every
  touched object joins a **dirty set** the recompute planner drains.

Claim ordering contract
-----------------------
``dataset_for`` materializes chunks with ``canonicalize=False``: claims
are stable-sorted by object only, so the *within-object* claim order is
the ingestion order.  Execution kernels sum per object and per source in
claim order, which makes this the serving-side half of the equivalence
guarantee: a stream ingested in the canonical order (time-major, then
object, then ascending source index) re-resolves bit-identically to the
batch :func:`~repro.streaming.icrh.icrh` oracle.  Duplicate claims for
the same (source, object, property) cell keep the *latest* arrival,
matching :class:`~repro.data.table.DatasetBuilder` overwrite semantics.
"""

from __future__ import annotations

from typing import Hashable, Iterable, NamedTuple, Sequence

import numpy as np

from ..data.claims_matrix import ClaimsMatrix, PropertyClaims
from ..data.encoding import MISSING_CODE, CategoricalCodec
from ..data.schema import DatasetSchema


class Claim(NamedTuple):
    """One arriving observation: a source's value for an object entry."""

    #: identifier of the claimed object (dataset ``object_ids`` domain)
    object_id: Hashable
    #: name of the claimed property (must exist in the store's schema)
    property_name: str
    #: identifier of the claiming source
    source_id: Hashable
    #: claimed value — a label for codec-backed properties, else a float
    value: object
    #: event time of the claim; drives window sealing in the service
    timestamp: float


class GrowableArray:
    """Append-only numpy array with amortized doubling growth.

    ``np.append`` reallocates the whole array per call — O(n) per append,
    O(n^2) for a stream — which is exactly the
    ``IncrementalCRH._positions_for`` pathology this class replaces.
    Appends write into spare capacity and the buffer doubles only when
    full, so ``n`` appends cost O(n) amortized with O(log n)
    reallocations (counted in :attr:`growth_events` for tests).
    """

    def __init__(self, dtype, fill=0, capacity: int = 16) -> None:
        self._dtype = np.dtype(dtype)
        self._fill = fill
        self._buf = np.full(max(int(capacity), 1), fill, dtype=self._dtype)
        self._n = 0
        self._shared = False
        #: number of buffer reallocations performed so far
        self.growth_events = 0
        #: copy-on-write buffer copies forced by :meth:`writable`
        self.cow_copies = 0

    def __len__(self) -> int:
        return self._n

    @property
    def data(self) -> np.ndarray:
        """View of the live prefix (no copy; invalidated by growth)."""
        return self._buf[:self._n]

    def freeze_view(self) -> np.ndarray:
        """A read-only view of the live prefix, stable under later writes.

        Marks the buffer *shared*: appends beyond the frozen length stay
        invisible to the view, and any later in-place mutation must go
        through :meth:`writable`, which copies the buffer first.  This
        is the copy-on-write primitive behind lock-free truth-snapshot
        reads — a frozen view never observes a torn write.
        """
        view = self._buf[:self._n]
        view.flags.writeable = False
        self._shared = True
        return view

    def writable(self) -> np.ndarray:
        """The live prefix for in-place mutation, copying if shared.

        While no :meth:`freeze_view` is outstanding this is exactly
        :attr:`data`; after one, the first mutation pays a single buffer
        copy (counted in :attr:`cow_copies`) so published views keep
        their values.
        """
        if self._shared:
            self._buf = self._buf.copy()
            self._shared = False
            self.cow_copies += 1
        return self._buf[:self._n]

    def _reserve(self, extra: int) -> None:
        """Ensure capacity for ``extra`` more elements (doubling)."""
        need = self._n + extra
        if need <= self._buf.size:
            return
        capacity = self._buf.size
        while capacity < need:
            capacity *= 2
        grown = np.full(capacity, self._fill, dtype=self._dtype)
        grown[:self._n] = self._buf[:self._n]
        self._buf = grown
        self._shared = False
        self.growth_events += 1

    def append(self, value) -> int:
        """Append one element; returns its index."""
        self._reserve(1)
        self._buf[self._n] = value
        self._n += 1
        return self._n - 1

    def extend(self, values) -> None:
        """Append a whole array of elements at once."""
        values = np.asarray(values)
        if values.size == 0:
            return
        self._reserve(values.size)
        self._buf[self._n:self._n + values.size] = values
        self._n += values.size

    def resize_to(self, n: int) -> None:
        """Grow the live length to ``n``, filling with the fill value."""
        if n < self._n:
            raise ValueError(f"cannot shrink from {self._n} to {n}")
        self._reserve(n - self._n)
        self._n = n


class ClaimStore:
    """Per-object claim index with first-appearance registries.

    Claims append to flat per-property arrays (values, source index,
    object index) in arrival order; sources and objects get dense
    indices when first seen.  Every touched object index is added to
    :attr:`dirty` — the invalidation contract the service's recompute
    planner drains after each ingest batch.
    """

    def __init__(self, schema: DatasetSchema,
                 codecs=None) -> None:
        self.schema = schema
        self._prop_index = {p.name: m for m, p in enumerate(schema)}
        self._codecs: dict[str, CategoricalCodec] = {}
        codecs = dict(codecs or {})
        for prop in schema:
            if prop.uses_codec:
                seed = codecs.get(prop.name)
                labels = seed.labels if seed is not None else ()
                self._codecs[prop.name] = CategoricalCodec(labels)
        self._values: list[GrowableArray] = []
        self._src: list[GrowableArray] = []
        self._obj: list[GrowableArray] = []
        for prop in schema:
            if prop.uses_codec:
                self._values.append(
                    GrowableArray(np.int32, MISSING_CODE))
            else:
                self._values.append(GrowableArray(np.float64, np.nan))
            self._src.append(GrowableArray(np.int32, 0))
            self._obj.append(GrowableArray(np.int32, 0))
        self._source_ids: list[Hashable] = []
        self._source_index: dict[Hashable, int] = {}
        self._object_ids: list[Hashable] = []
        self._object_index: dict[Hashable, int] = {}
        self._object_ts = GrowableArray(np.float64, np.nan)
        #: indices of objects touched since the dirty set was last drained
        self.dirty: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def n_sources(self) -> int:
        """Number of registered sources."""
        return len(self._source_ids)

    @property
    def n_objects(self) -> int:
        """Number of registered objects."""
        return len(self._object_ids)

    @property
    def source_ids(self) -> tuple:
        """Registered sources, in first-appearance order."""
        return tuple(self._source_ids)

    @property
    def object_ids(self) -> tuple:
        """Registered objects, in first-appearance order."""
        return tuple(self._object_ids)

    @property
    def object_timestamps(self) -> np.ndarray:
        """Per-object event time (the first claim's timestamp)."""
        return self._object_ts.data

    def n_claims(self) -> int:
        """Stored claims across all properties (duplicates included)."""
        return sum(len(v) for v in self._values)

    @property
    def growth_events(self) -> int:
        """Total buffer reallocations across all growable columns."""
        total = self._object_ts.growth_events
        for arrays in (self._values, self._src, self._obj):
            total += sum(a.growth_events for a in arrays)
        return total

    def codecs(self) -> dict[str, CategoricalCodec]:
        """Codecs of the codec-backed properties, keyed by name."""
        return dict(self._codecs)

    def source_position(self, source_id: Hashable) -> int:
        """Index of ``source_id``, registering it if unseen."""
        index = self._source_index.get(source_id)
        if index is None:
            index = len(self._source_ids)
            self._source_ids.append(source_id)
            self._source_index[source_id] = index
        return index

    def object_position(self, object_id: Hashable) -> int:
        """Index of a *known* ``object_id`` (KeyError if never claimed)."""
        return self._object_index[object_id]

    # ------------------------------------------------------------------
    def add(self, claim: Claim) -> tuple[int, bool]:
        """Absorb one claim; returns ``(object_index, object_is_new)``.

        The object joins :attr:`dirty`; a new object's timestamp is the
        claim's (later claims never move an object between windows).
        """
        m = self._prop_index.get(claim.property_name)
        if m is None:
            raise ValueError(
                f"unknown property {claim.property_name!r}; schema has "
                f"{list(self._prop_index)}"
            )
        source = self.source_position(claim.source_id)
        obj = self._object_index.get(claim.object_id)
        created = obj is None
        if created:
            obj = len(self._object_ids)
            self._object_ids.append(claim.object_id)
            self._object_index[claim.object_id] = obj
            self._object_ts.append(
                np.nan if claim.timestamp is None
                else float(claim.timestamp))
        codec = self._codecs.get(claim.property_name)
        value = (codec.encode(claim.value) if codec is not None
                 else claim.value)
        self._values[m].append(value)
        self._src[m].append(source)
        self._obj[m].append(obj)
        self.dirty.add(obj)
        return obj, created

    def add_many(self, claims: Iterable[Claim]) -> int:
        """Absorb an iterable of claims; returns how many were added."""
        count = 0
        for claim in claims:
            self.add(claim)
            count += 1
        return count

    # ------------------------------------------------------------------
    def _gather(self, m: int, remap: np.ndarray):
        """Property ``m``'s live claims for the objects selected by
        ``remap`` (global object index -> local index, -1 drops),
        deduplicated keep-last, stable-sorted by local object —
        preserving arrival order within each object."""
        obj = self._obj[m].data
        local = remap[obj]
        keep = np.flatnonzero(local >= 0)
        local = local[keep]
        src = self._src[m].data[keep]
        values = self._values[m].data[keep]
        if keep.size:
            # Keep only the latest claim per (object, source) cell:
            # group-sort with arrival position as the innermost key,
            # take each group's last row, then restore arrival order.
            order = np.lexsort((np.arange(keep.size), src, local))
            l_sorted = local[order]
            s_sorted = src[order]
            last = np.ones(order.size, dtype=bool)
            last[:-1] = (l_sorted[1:] != l_sorted[:-1]) | \
                (s_sorted[1:] != s_sorted[:-1])
            survivors = np.sort(order[last])
            local = local[survivors]
            src = src[survivors]
            values = values[survivors]
            by_object = np.argsort(local, kind="stable")
            local = local[by_object]
            src = src[by_object]
            values = values[by_object]
        return values, src, local.astype(np.int32)

    def dataset_for(self, object_indices: Sequence[int]) -> ClaimsMatrix:
        """A :class:`~repro.data.claims_matrix.ClaimsMatrix` chunk over
        the objects at ``object_indices`` (all registered sources).

        Claims stay in ingestion order within each object
        (``canonicalize=False``) — see the module docstring for why
        this is what bit-identical replay equivalence requires.
        """
        indices = np.asarray(object_indices, dtype=np.int64)
        remap = np.full(self.n_objects, -1, dtype=np.int64)
        remap[indices] = np.arange(indices.size)
        properties = []
        for m, prop in enumerate(self.schema):
            values, src, local = self._gather(m, remap)
            properties.append(PropertyClaims(
                schema=prop,
                values=values,
                source_idx=src,
                object_idx=local,
                n_objects=int(indices.size),
                n_sources=self.n_sources,
                codec=self._codecs.get(prop.name),
                canonicalize=False,
            ))
        ts = self._object_ts.data[indices]
        return ClaimsMatrix(
            schema=self.schema,
            source_ids=self.source_ids,
            object_ids=[self._object_ids[i] for i in indices],
            properties=properties,
            object_timestamps=None if np.isnan(ts).any() else ts,
        )

    def to_claims_matrix(self) -> ClaimsMatrix:
        """The whole store as a canonical (object-major, source-
        ascending) claims matrix — the snapshot representation
        :func:`repro.data.io.save_dataset` persists."""
        remap = np.arange(self.n_objects, dtype=np.int64)
        properties = []
        for m, prop in enumerate(self.schema):
            values, src, local = self._gather(m, remap)
            properties.append(PropertyClaims(
                schema=prop,
                values=values,
                source_idx=src,
                object_idx=local,
                n_objects=self.n_objects,
                n_sources=self.n_sources,
                codec=self._codecs.get(prop.name),
                canonicalize=True,
            ))
        ts = self._object_ts.data
        return ClaimsMatrix(
            schema=self.schema,
            source_ids=self.source_ids,
            object_ids=self.object_ids,
            properties=properties,
            object_timestamps=(None if ts.size and np.isnan(ts).any()
                               else ts.copy()),
        )

    @classmethod
    def from_claims_matrix(cls, matrix: ClaimsMatrix) -> "ClaimStore":
        """Rebuild a store from a (restored) claims matrix.

        Bulk-loads the canonical claim arrays, so the post-restore
        ingestion order is the canonical order — deterministic, and
        documented as part of the snapshot format.
        """
        store = cls(matrix.schema, codecs=matrix.codecs())
        for source_id in matrix.source_ids:
            store.source_position(source_id)
        store._object_ids = list(matrix.object_ids)
        store._object_index = {
            o: i for i, o in enumerate(store._object_ids)}
        if matrix.object_timestamps is not None:
            store._object_ts.extend(
                np.asarray(matrix.object_timestamps, dtype=np.float64))
        else:
            store._object_ts.resize_to(len(store._object_ids))
            store._object_ts.data[:] = np.nan
        for m, prop in enumerate(matrix.properties):
            view = prop.claim_view()
            store._values[m].extend(view.values)
            store._src[m].extend(view.source_idx)
            store._obj[m].extend(view.object_idx)
        return store

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClaimStore(K={self.n_sources}, N={self.n_objects}, "
            f"claims={self.n_claims()}, dirty={len(self.dirty)})"
        )
