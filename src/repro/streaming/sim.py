"""``repro serve-sim``: drive a TruthService over a simulated stream.

Replays the weather workload claim by claim through the serving stack —
batched ingests, interleaved random truth reads — and prints the
serving counters the run produced.  This is the CLI surface of the
serving layer: the same loop a long-lived deployment would run, but
against a generated stream, so ingest/read tracing, the dirty-set
planner, live metrics export and snapshotting can all be exercised
(and traced) from a terminal::

    python -m repro serve-sim --cities 8 --days 30 --reads 5
    python -m repro serve-sim --trace serve.jsonl --snapshot state/
    python -m repro serve-sim --prom serve.prom --metrics-jsonl live.jsonl
    python -m repro serve-sim --http 9095     # /metrics + /healthz

With ``--prom`` / ``--metrics-jsonl`` a
:class:`~repro.observability.export.MetricsExporter` snapshots the
service registry every ``--export-every`` ingest batches (plus once at
the end); ``--http PORT`` additionally serves the live exposition on
``/metrics`` and the SLO verdict on ``/healthz``.  ``--slo`` rules
(``metric{<|>}warn[:fail]``) replace the default serving SLOs.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

from ..observability import (
    HealthCheck,
    JsonlTracer,
    MetricsExporter,
    parse_rule,
)
from ..observability.export import flatten_snapshot
from .concurrent import ShardedTruthService
from .icrh import ICRHConfig
from .service import TruthService, iter_dataset_claims


def build_arg_parser() -> argparse.ArgumentParser:
    """Build the ``serve-sim`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="crh-repro serve-sim",
        description=("Simulate a truth-serving session: stream the "
                     "weather workload through TruthService with "
                     "interleaved reads"),
    )
    parser.add_argument("--cities", type=int, default=8,
                        help="weather cities in the stream (default 8)")
    parser.add_argument("--days", type=int, default=30,
                        help="stream days (default 30)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload random seed (default 0)")
    parser.add_argument("--window", type=int, default=2,
                        help="timestamps per sealed window (default 2)")
    parser.add_argument("--batch", type=int, default=500,
                        help="claims per ingest call (default 500)")
    parser.add_argument("--reads", type=int, default=3,
                        help="random single-object reads between "
                             "ingest batches (default 3)")
    parser.add_argument("--decay", type=float, default=1.0,
                        help="I-CRH decay factor alpha (default 1.0)")
    parser.add_argument("--shards", type=int, default=1,
                        help="partition objects across this many "
                             "TruthService shards behind a "
                             "ShardedTruthService router (default 1 = "
                             "unsharded)")
    parser.add_argument("--ingest-threads", type=int, default=0,
                        help="async ingest worker threads draining "
                             "bounded per-worker queues (default 0 = "
                             "synchronous ingest; implies the sharded "
                             "router)")
    parser.add_argument("--trace", type=Path, default=None,
                        help="write ingest/read JSONL trace records "
                             "to this file")
    parser.add_argument("--snapshot", type=Path, default=None,
                        help="snapshot the final service state into "
                             "this directory")
    parser.add_argument("--prom", type=Path, default=None,
                        help="write the Prometheus text exposition to "
                             "this file on every export")
    parser.add_argument("--metrics-jsonl", type=Path, default=None,
                        help="append one JSON metrics snapshot line "
                             "per export to this file (repro top "
                             "tails it)")
    parser.add_argument("--export-every", type=int, default=5,
                        help="ingest batches between metric exports "
                             "(default 5; a final export always runs)")
    parser.add_argument("--http", type=int, default=None, metavar="PORT",
                        help="serve /metrics and /healthz on "
                             "127.0.0.1:PORT for the duration of "
                             "the run")
    parser.add_argument("--slo", action="append", default=None,
                        metavar="RULE",
                        help="health rule metric{<|>}warn[:fail] "
                             "(repeatable; replaces the default "
                             "serving SLOs)")
    return parser


def _start_http_server(port: int, registry, health: HealthCheck):
    """Serve ``/metrics`` and ``/healthz`` on a daemon thread.

    Returns the ``ThreadingHTTPServer`` (caller shuts it down).
    ``/metrics`` renders the live registry as Prometheus text;
    ``/healthz`` evaluates the SLO rules against the flattened
    snapshot and answers 200 (healthy/degraded) or 503 (unhealthy)
    with the JSON report as body.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class _Handler(BaseHTTPRequestHandler):
        def _reply(self, code: int, content_type: str,
                   body: bytes) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
            if self.path == "/metrics":
                self._reply(200, "text/plain; version=0.0.4",
                            registry.to_prometheus().encode("utf-8"))
            elif self.path == "/healthz":
                report = health.evaluate(
                    flatten_snapshot(registry.snapshot()))
                body = json.dumps(report.to_dict()).encode("utf-8")
                code = 200 if report.status != "unhealthy" else 503
                self._reply(code, "application/json", body)
            else:
                self._reply(404, "text/plain", b"not found\n")

        def log_message(self, *args):  # silence per-request stderr
            pass

    server = ThreadingHTTPServer(("127.0.0.1", port), _Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


def serve_sim_main(argv: list[str] | None = None) -> int:
    """Run the serving simulation; returns the process exit code."""
    from ..datasets import WeatherConfig, generate_weather_dataset

    args = build_arg_parser().parse_args(argv)
    if args.export_every < 1:
        print("serve-sim: --export-every must be >= 1", file=sys.stderr)
        return 2
    config = WeatherConfig(n_cities=args.cities, n_days=args.days,
                           seed=args.seed)
    dataset = generate_weather_dataset(config).dataset
    claims = list(iter_dataset_claims(dataset))
    rng = np.random.default_rng(args.seed)
    tracer = JsonlTracer(args.trace) if args.trace is not None else None
    if args.shards < 1 or args.ingest_threads < 0:
        print("serve-sim: --shards must be >= 1 and --ingest-threads "
              ">= 0", file=sys.stderr)
        return 2
    sharded = args.shards > 1 or args.ingest_threads > 0
    if sharded:
        service = ShardedTruthService(
            dataset.schema, n_shards=args.shards, window=args.window,
            config=ICRHConfig(decay=args.decay),
            codecs=dataset.codecs(), tracer=tracer,
            ingest_threads=args.ingest_threads,
        )
        registry = service.registry_view()
    else:
        service = TruthService(
            dataset.schema, window=args.window,
            config=ICRHConfig(decay=args.decay),
            codecs=dataset.codecs(), tracer=tracer,
        )
        registry = service.registry
    try:
        rules = ([parse_rule(text) for text in args.slo]
                 if args.slo else None)
    except ValueError as error:
        print(f"serve-sim: {error}", file=sys.stderr)
        return 2
    health = HealthCheck(rules)
    exporter = None
    if args.prom is not None or args.metrics_jsonl is not None:
        exporter = MetricsExporter(registry, prom_path=args.prom,
                                   jsonl_path=args.metrics_jsonl,
                                   health=health)
    server = None
    if args.http is not None:
        server = _start_http_server(args.http, registry, health)
        print(f"serving /metrics and /healthz on "
              f"http://127.0.0.1:{args.http}")
    topology = (f"shards={args.shards}, "
                f"ingest_threads={args.ingest_threads}"
                if sharded else "unsharded")
    print(f"serve-sim: {len(claims):,} claims over {args.days} days, "
          f"{dataset.n_objects} objects, window={args.window}, "
          f"batch={args.batch}, {topology}")
    started = time.perf_counter()
    try:
        for batch_index, start in enumerate(
                range(0, len(claims), args.batch)):
            report = service.ingest(claims[start:start + args.batch])
            if report.windows_sealed:
                print(f"  t={start + report.ingested_claims:>7,} claims: "
                      f"sealed {report.windows_sealed} window(s), "
                      f"recomputed {report.recomputed_objects} object(s)")
            known = service.object_ids
            for object_id in rng.choice(len(known),
                                        min(args.reads, len(known)),
                                        replace=False):
                service.get_truth([known[int(object_id)]])
            if (exporter is not None
                    and batch_index % args.export_every == 0):
                exporter.export()
        service.flush()
        if sharded:
            service.drain()
        if exporter is not None:
            exporter.export()
    finally:
        if sharded:
            service.close()
        if tracer is not None:
            tracer.close()
        if server is not None:
            server.shutdown()
    elapsed = time.perf_counter() - started
    metrics = service.metrics()
    rate = metrics["ingested_claims"] / elapsed if elapsed else 0.0
    print(f"ingested {metrics['ingested_claims']:,} claims in "
          f"{elapsed:.2f} s ({rate:,.0f} claims/sec), sealed "
          f"{metrics['windows_sealed']} windows")
    print(f"reads: {metrics['read_objects']:,} objects, cache hit rate "
          f"{metrics['cache_hit_rate']:.1%}")
    print(f"state: {metrics['n_sources']} sources, "
          f"{metrics['n_objects']:,} objects, "
          f"{metrics['dirty_objects']} dirty, "
          f"{metrics['cached_objects']:,} cached")
    weights = service.weights_by_source()
    top = sorted(weights, key=weights.get, reverse=True)[:3]
    print("top sources: "
          + ", ".join(f"{s}={weights[s]:.3f}" for s in top))
    report = health.evaluate(flatten_snapshot(registry.snapshot()))
    print(report.render())
    if args.snapshot is not None:
        service.snapshot(args.snapshot)
        print(f"snapshot written to {args.snapshot}/")
    if args.trace is not None:
        print(f"trace written to {args.trace}")
    if args.prom is not None:
        print(f"prometheus exposition written to {args.prom} "
              f"({exporter.exports} export(s))")
    if args.metrics_jsonl is not None:
        print(f"metrics snapshots appended to {args.metrics_jsonl}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_sim_main())
