"""``repro serve-sim``: drive a TruthService over a simulated stream.

Replays the weather workload claim by claim through the serving stack —
batched ingests, interleaved random truth reads — and prints the
serving counters the run produced.  This is the CLI surface of the
serving layer: the same loop a long-lived deployment would run, but
against a generated stream, so ingest/read tracing, the dirty-set
planner and snapshotting can all be exercised (and traced) from a
terminal::

    python -m repro serve-sim --cities 8 --days 30 --reads 5
    python -m repro serve-sim --trace serve.jsonl --snapshot state/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from ..observability import JsonlTracer
from .icrh import ICRHConfig
from .service import TruthService, iter_dataset_claims


def build_arg_parser() -> argparse.ArgumentParser:
    """Build the ``serve-sim`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="crh-repro serve-sim",
        description=("Simulate a truth-serving session: stream the "
                     "weather workload through TruthService with "
                     "interleaved reads"),
    )
    parser.add_argument("--cities", type=int, default=8,
                        help="weather cities in the stream (default 8)")
    parser.add_argument("--days", type=int, default=30,
                        help="stream days (default 30)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload random seed (default 0)")
    parser.add_argument("--window", type=int, default=2,
                        help="timestamps per sealed window (default 2)")
    parser.add_argument("--batch", type=int, default=500,
                        help="claims per ingest call (default 500)")
    parser.add_argument("--reads", type=int, default=3,
                        help="random single-object reads between "
                             "ingest batches (default 3)")
    parser.add_argument("--decay", type=float, default=1.0,
                        help="I-CRH decay factor alpha (default 1.0)")
    parser.add_argument("--trace", type=Path, default=None,
                        help="write ingest/read JSONL trace records "
                             "to this file")
    parser.add_argument("--snapshot", type=Path, default=None,
                        help="snapshot the final service state into "
                             "this directory")
    return parser


def serve_sim_main(argv: list[str] | None = None) -> int:
    """Run the serving simulation; returns the process exit code."""
    from ..datasets import WeatherConfig, generate_weather_dataset

    args = build_arg_parser().parse_args(argv)
    config = WeatherConfig(n_cities=args.cities, n_days=args.days,
                           seed=args.seed)
    dataset = generate_weather_dataset(config).dataset
    claims = list(iter_dataset_claims(dataset))
    rng = np.random.default_rng(args.seed)
    tracer = JsonlTracer(args.trace) if args.trace is not None else None
    service = TruthService(
        dataset.schema, window=args.window,
        config=ICRHConfig(decay=args.decay),
        codecs=dataset.codecs(), tracer=tracer,
    )
    print(f"serve-sim: {len(claims):,} claims over {args.days} days, "
          f"{dataset.n_objects} objects, window={args.window}, "
          f"batch={args.batch}")
    started = time.perf_counter()
    try:
        for start in range(0, len(claims), args.batch):
            report = service.ingest(claims[start:start + args.batch])
            if report.windows_sealed:
                print(f"  t={start + report.ingested_claims:>7,} claims: "
                      f"sealed {report.windows_sealed} window(s), "
                      f"recomputed {report.recomputed_objects} object(s)")
            known = service.object_ids
            for object_id in rng.choice(len(known),
                                        min(args.reads, len(known)),
                                        replace=False):
                service.get_truth([known[int(object_id)]])
        service.flush()
    finally:
        if tracer is not None:
            tracer.close()
    elapsed = time.perf_counter() - started
    metrics = service.metrics()
    rate = metrics["ingested_claims"] / elapsed if elapsed else 0.0
    print(f"ingested {metrics['ingested_claims']:,} claims in "
          f"{elapsed:.2f} s ({rate:,.0f} claims/sec), sealed "
          f"{metrics['windows_sealed']} windows")
    print(f"reads: {metrics['read_objects']:,} objects, cache hit rate "
          f"{metrics['cache_hit_rate']:.1%}")
    print(f"state: {metrics['n_sources']} sources, "
          f"{metrics['n_objects']:,} objects, "
          f"{metrics['dirty_objects']} dirty, "
          f"{metrics['cached_objects']:,} cached")
    weights = service.weights_by_source()
    top = sorted(weights, key=weights.get, reverse=True)[:3]
    print("top sources: "
          + ", ".join(f"{s}={weights[s]:.3f}" for s in top))
    if args.snapshot is not None:
        service.snapshot(args.snapshot)
        print(f"snapshot written to {args.snapshot}/")
    if args.trace is not None:
        print(f"trace written to {args.trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_sim_main())
