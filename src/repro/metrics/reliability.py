"""Source-reliability measurement and comparison (Fig. 1 / Fig. 4).

The paper defines a source's *true* reliability from ground truth as "the
probability that the source makes correct statements on categorical data,
and the chance that the source makes statements close to the truth on
continuous data", combined into one score per source.  Estimated scores
from different methods are min-max normalized into [0, 1] to be comparable,
and methods that output *unreliability* (GTM's variances, 3-Estimates'
error rates) are inverted first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ..data.encoding import MISSING_CODE
from ..data.schema import PropertyKind
from ..data.table import MultiSourceDataset, TruthTable
from ..core.weighted_stats import column_std


def true_source_reliability(dataset: MultiSourceDataset,
                            truth: TruthTable) -> np.ndarray:
    """Ground-truth reliability score per source, in [0, 1].

    Categorical part: the source's accuracy on labeled entries it claims.
    Continuous part: ``exp(-mean normalized absolute error)`` — a monotone
    map of "how close to the truth" into [0, 1].  The two parts are
    averaged per source over the properties where the source has evaluable
    claims.
    """
    if truth.object_ids != dataset.object_ids:
        raise ValueError("truth table misaligned with dataset")
    k = dataset.n_sources
    score_sum = np.zeros(k)
    score_cnt = np.zeros(k)
    for m, prop in enumerate(dataset.schema):
        obs = dataset.properties[m]
        truth_col = truth.columns[m]
        if prop.uses_codec:
            labeled = truth_col != MISSING_CODE
            observed = obs.observed_mask() & labeled[None, :]
            counts = observed.sum(axis=1)
            correct = (
                (obs.values == truth_col[None, :]) & observed
            ).sum(axis=1)
            has = counts > 0
            score_sum[has] += correct[has] / counts[has]
            score_cnt[has] += 1
        else:
            truth_vals = truth_col.astype(np.float64)
            labeled = ~np.isnan(truth_vals)
            observed = obs.observed_mask() & labeled[None, :]
            std = column_std(obs.values)
            with np.errstate(invalid="ignore"):
                nad = np.abs(obs.values - truth_vals[None, :]) / std[None, :]
            nad = np.where(observed, nad, np.nan)
            counts = observed.sum(axis=1)
            has = counts > 0
            with np.errstate(invalid="ignore"):
                mean_nad = np.nanmean(np.where(observed, nad, np.nan), axis=1)
            score_sum[has] += np.exp(-mean_nad[has])
            score_cnt[has] += 1
    with np.errstate(invalid="ignore", divide="ignore"):
        scores = score_sum / score_cnt
    return np.where(score_cnt > 0, scores, 0.0)


def normalize_scores(scores: Sequence[float],
                     invert: bool = False) -> np.ndarray:
    """Min-max normalize reliability scores into [0, 1].

    ``invert=True`` converts unreliability scores (GTM, 3-Estimates) into
    reliability before normalizing, as the paper does for Fig. 1.
    """
    arr = np.asarray(scores, dtype=np.float64)
    if invert:
        arr = -arr
    span = arr.max() - arr.min()
    if span <= 0:
        return np.full_like(arr, 0.5)
    return (arr - arr.min()) / span


def pearson_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson correlation coefficient (used in Table 6 and Fig. 1 checks)."""
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("inputs must be equal-length 1-d sequences")
    if x.size < 2:
        raise ValueError("need at least two points")
    sx = x.std()
    sy = y.std()
    if sx <= 0 or sy <= 0:
        raise ValueError("correlation undefined for constant sequences")
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def rank_agreement(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation between two reliability score vectors.

    Fig. 1's qualitative claim is about *ordering* sources correctly, so
    tests assert on rank agreement rather than raw values.
    """
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    ranks_x = np.argsort(np.argsort(x)).astype(np.float64)
    ranks_y = np.argsort(np.argsort(y)).astype(np.float64)
    return pearson_correlation(ranks_x, ranks_y)


@dataclass(frozen=True)
class ReliabilityComparison:
    """Estimated-vs-true reliability for one method (one Fig. 1 series)."""

    method: str
    source_ids: tuple[Hashable, ...]
    true_scores: np.ndarray
    estimated_scores: np.ndarray

    @property
    def pearson(self) -> float:
        return pearson_correlation(self.true_scores, self.estimated_scores)

    @property
    def spearman(self) -> float:
        return rank_agreement(self.true_scores, self.estimated_scores)


def compare_reliability(
    method: str,
    dataset: MultiSourceDataset,
    truth: TruthTable,
    estimated: Sequence[float],
    invert: bool = False,
) -> ReliabilityComparison:
    """Build a normalized comparison of estimated vs true reliability."""
    true_scores = normalize_scores(true_source_reliability(dataset, truth))
    est_scores = normalize_scores(estimated, invert=invert)
    return ReliabilityComparison(
        method=method,
        source_ids=dataset.source_ids,
        true_scores=true_scores,
        estimated_scores=est_scores,
    )
