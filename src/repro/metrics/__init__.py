"""Evaluation measures: Error Rate, MNAD, and source-reliability analysis."""

from .accuracy import AccuracyReport, error_rate, evaluate, mnad
from .reliability import (
    ReliabilityComparison,
    compare_reliability,
    normalize_scores,
    pearson_correlation,
    rank_agreement,
    true_source_reliability,
)

__all__ = [
    "AccuracyReport",
    "ReliabilityComparison",
    "compare_reliability",
    "error_rate",
    "evaluate",
    "mnad",
    "normalize_scores",
    "pearson_correlation",
    "rank_agreement",
    "true_source_reliability",
]
