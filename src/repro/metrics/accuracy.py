"""Evaluation measures from Section 3.1.1: Error Rate and MNAD.

Both are computed against a (possibly partial) ground-truth table; entries
the ground truth does not label are skipped, matching the paper's setup
where only a subset of entries carries ground truth (Table 1).  Lower is
better for both measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.encoding import MISSING_CODE
from ..data.schema import PropertyKind
from ..data.table import TruthTable


@dataclass(frozen=True)
class AccuracyReport:
    """Joint accuracy summary of one method on one dataset."""

    error_rate: float | None
    mnad: float | None
    n_categorical_evaluated: int
    n_categorical_wrong: int
    n_continuous_evaluated: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        err = "NA" if self.error_rate is None else f"{self.error_rate:.4f}"
        mnad = "NA" if self.mnad is None else f"{self.mnad:.4f}"
        return f"ErrorRate={err} MNAD={mnad}"


def _check_comparable(estimate: TruthTable, truth: TruthTable) -> None:
    if estimate.schema.names() != truth.schema.names():
        raise ValueError(
            f"schema mismatch: estimate {estimate.schema.names()} vs "
            f"ground truth {truth.schema.names()}"
        )
    if estimate.object_ids != truth.object_ids:
        raise ValueError("estimate and ground truth describe different objects")


def error_rate(estimate: TruthTable, truth: TruthTable) -> float | None:
    """Fraction of labeled categorical entries the estimate gets wrong.

    Categorical codes are compared through their decoded labels when the
    two tables use different codec objects, so evaluation never depends on
    code-assignment order.  Returns ``None`` when the ground truth labels
    no categorical entries (the paper reports "NA" there).
    """
    _check_comparable(estimate, truth)
    wrong = 0
    evaluated = 0
    for m, prop in enumerate(truth.schema):
        if not prop.uses_codec:
            continue
        truth_col = truth.columns[m]
        est_col = estimate.columns[m]
        labeled = truth_col != MISSING_CODE
        evaluated += int(labeled.sum())
        same_codec = (truth.codecs.get(prop.name)
                      is estimate.codecs.get(prop.name))
        if same_codec:
            wrong += int((est_col[labeled] != truth_col[labeled]).sum())
        else:
            t_codec = truth.codecs[prop.name]
            e_codec = estimate.codecs[prop.name]
            for i in np.flatnonzero(labeled):
                t_label = t_codec.decode(int(truth_col[i]))
                e_label = (e_codec.decode(int(est_col[i]))
                           if est_col[i] != MISSING_CODE else None)
                if t_label != e_label:
                    wrong += 1
    if evaluated == 0:
        return None
    return wrong / evaluated


def mnad(estimate: TruthTable, truth: TruthTable) -> float | None:
    """Mean Normalized Absolute Distance on continuous entries.

    For every labeled continuous entry the absolute distance between the
    estimate and the ground truth is divided by the entry's own scale
    ("we normalize the distance on each entry by its own variance"); the
    scale is the per-property std of the ground-truth values, a per-entry
    proxy that is stable when, as here, ground truth per entry is a single
    number.  Unestimated entries (NaN) are scored as if the estimate were
    the property's ground-truth mean, penalizing abstention without
    crashing.  Returns ``None`` when no continuous entry is labeled.
    """
    _check_comparable(estimate, truth)
    distances: list[np.ndarray] = []
    for m, prop in enumerate(truth.schema):
        if prop.kind is not PropertyKind.CONTINUOUS:
            continue
        truth_col = truth.columns[m].astype(np.float64)
        est_col = estimate.columns[m].astype(np.float64)
        labeled = ~np.isnan(truth_col)
        if not labeled.any():
            continue
        scale = float(np.std(truth_col[labeled]))
        if scale <= 0:
            scale = 1.0
        est = est_col[labeled]
        fallback = float(np.mean(truth_col[labeled]))
        est = np.where(np.isnan(est), fallback, est)
        distances.append(np.abs(est - truth_col[labeled]) / scale)
    if not distances:
        return None
    return float(np.concatenate(distances).mean())


def evaluate(estimate: TruthTable, truth: TruthTable) -> AccuracyReport:
    """Error Rate + MNAD in one pass, with supporting counts."""
    _check_comparable(estimate, truth)
    n_cat = 0
    n_cat_wrong = 0
    n_cont = 0
    for m, prop in enumerate(truth.schema):
        if prop.uses_codec:
            labeled = truth.columns[m] != MISSING_CODE
            n_cat += int(labeled.sum())
        else:
            labeled = ~np.isnan(truth.columns[m].astype(np.float64))
            n_cont += int(labeled.sum())
    rate = error_rate(estimate, truth)
    if rate is not None:
        n_cat_wrong = round(rate * n_cat)
    return AccuracyReport(
        error_rate=rate,
        mnad=mnad(estimate, truth),
        n_categorical_evaluated=n_cat,
        n_categorical_wrong=n_cat_wrong,
        n_continuous_evaluated=n_cont,
    )
