"""Bregman-divergence losses (the convex family of Section 2.5).

The paper's convergence discussion points at *Bregman divergences* [29]
as the family of convex losses the framework provably converges with,
naming "squared loss, logistic loss, Itakura-Saito distance, squared
Euclidean distance, Mahalanobis distance, KL-divergence and generalized
I-divergence".  This module implements the scalar members relevant to
continuous properties:

========================  ==========================  =================
generator phi(x)          divergence d_phi(x, y)      domain
========================  ==========================  =================
``squared_euclidean``     (x - y)^2 / 2               all reals
``itakura_saito``         x/y - log(x/y) - 1          positive reals
``generalized_i``         x log(x/y) - x + y          positive reals
========================  ==========================  =================

All Bregman divergences share one remarkable property (Banerjee et
al. [29], Proposition 1): the minimizer of the weighted divergence
``sum_k w_k d_phi(x_k, y)`` over the *second* argument is the **weighted
arithmetic mean** of the points, for *every* generator phi.  The truth
step (Eq. 3) is therefore identical across the family — only the
deviations entering the weight step differ — which is exactly why the
framework's convergence proof covers them uniformly.  The property-based
tests in ``tests/test_bregman.py`` verify it numerically per generator.

Observations are normalized by the per-entry std before applying
positive-domain generators would make no sense; instead, positive-domain
divergences validate their domain and are applied to the raw values
(suitable for inherently positive quantities such as volumes, counts and
power spectra — Itakura-Saito's classic use).  The deviation is then
scaled by the entry's mean divergence denominator like Eqs. 13/15 scale
by the std, keeping properties comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data.schema import PropertyKind
from . import kernels
from .losses import Loss, TruthState, register_loss


@dataclass(frozen=True)
class BregmanGenerator:
    """A scalar Bregman generator: divergence + domain check."""

    name: str
    #: d_phi(x, y): divergence of observation x from truth y
    divergence: Callable[[np.ndarray, np.ndarray], np.ndarray]
    #: True where values lie in the generator's domain
    in_domain: Callable[[np.ndarray], np.ndarray]
    domain_description: str


def _squared_euclidean(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return 0.5 * (x - y) ** 2


def _itakura_saito(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    ratio = x / y
    return ratio - np.log(ratio) - 1.0


def _generalized_i(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return x * np.log(x / y) - x + y


GENERATORS: dict[str, BregmanGenerator] = {
    "squared_euclidean": BregmanGenerator(
        name="squared_euclidean",
        divergence=_squared_euclidean,
        in_domain=lambda x: np.isfinite(x),
        domain_description="all finite reals",
    ),
    "itakura_saito": BregmanGenerator(
        name="itakura_saito",
        divergence=_itakura_saito,
        in_domain=lambda x: np.isfinite(x) & (x > 0),
        domain_description="positive reals",
    ),
    "generalized_i": BregmanGenerator(
        name="generalized_i",
        divergence=_generalized_i,
        in_domain=lambda x: np.isfinite(x) & (x > 0),
        domain_description="positive reals",
    ),
}


class BregmanLoss(Loss):
    """Continuous loss under a chosen Bregman generator.

    The truth update is the weighted mean for every generator (the
    Bregman centroid theorem); ``deviations`` applies the generator's
    divergence, scaled per entry so properties stay comparable.
    Subclasses pin a generator so the loss registry can address each by
    name (``bregman_squared_euclidean``, ``bregman_itakura_saito``,
    ``bregman_generalized_i``).

    The whole family runs on the claim view: the truth step is
    :func:`~repro.core.kernels.segment_weighted_mean` and the deviations
    are :func:`~repro.core.kernels.bregman_claim_deviations`, so every
    member is supported natively on the dense, sparse, process, and mmap
    backends (all three names are in ``WORKER_LOSSES`` and
    ``CHUNK_LOSSES``).  The domain check runs once, in
    :meth:`initial_state`, over the claim values in bounded-size blocks
    so memory-mapped claim arrays are never materialized whole.
    """

    kind = PropertyKind.CONTINUOUS
    generator_name: str = "squared_euclidean"

    def __init__(self) -> None:
        self.generator = GENERATORS[self.generator_name]

    def _check_domain(self, prop) -> None:
        values = prop.claim_view().values
        block = 1 << 20
        for start in range(0, values.shape[0], block):
            chunk = np.asarray(values[start:start + block],
                               dtype=np.float64)
            if not self.generator.in_domain(chunk).all():
                raise ValueError(
                    f"property {prop.schema.name!r} has observations "
                    f"outside the {self.generator.name} domain "
                    f"({self.generator.domain_description})"
                )

    def initial_state(self, prop, init_column: np.ndarray) -> TruthState:
        """Validate the domain and wrap the initial column."""
        self._check_domain(prop)
        return TruthState(column=np.asarray(init_column, dtype=np.float64))

    def update_truth(self, prop, weights: np.ndarray) -> TruthState:
        """Weighted mean — the Bregman centroid for every generator."""
        return self.update_truth_fused(prop, weights)

    def update_truth_fused(self, prop, weights: np.ndarray, *,
                           claim_weights: np.ndarray | None = None,
                           effective=None) -> TruthState:
        """Weighted mean with the sweep's precomputed per-view state."""
        view = prop.claim_view()
        if claim_weights is None:
            claim_weights = view.claim_weights(weights)
        return TruthState(column=kernels.segment_weighted_mean(
            view.values, claim_weights, view.indptr,
            group_of_claim=view.object_idx, effective=effective,
        ))

    def claim_deviations(self, state: TruthState, prop) -> np.ndarray:
        """Per-claim divergence, scaled by the entry's mean divergence.

        The scaling plays the role of Eq. 13/15's std normalization: an
        entry whose claims are widely dispersed should not dominate the
        per-source sums just because its divergences are numerically
        large.
        """
        view = prop.claim_view()
        return kernels.bregman_claim_deviations(
            view.values, state.column, view.indptr, view.object_idx,
            self.generator.divergence,
        )

    def claim_deviations_into(self, state: TruthState, prop,
                              out: np.ndarray) -> np.ndarray:
        """Scaled divergences into a caller-owned scratch buffer."""
        view = prop.claim_view()
        return kernels.bregman_claim_deviations(
            view.values, state.column, view.indptr, view.object_idx,
            self.generator.divergence, out=out,
        )

    def deviations(self, state: TruthState, prop) -> np.ndarray:
        """Dense ``(K, N)`` bridge over :meth:`claim_deviations`."""
        return kernels.scatter_claims_to_matrix(
            prop.claim_view(), self.claim_deviations(state, prop)
        )


@register_loss
class SquaredEuclideanBregmanLoss(BregmanLoss):
    """Squared Euclidean distance (phi(x) = x^2 / 2)."""

    name = "bregman_squared_euclidean"
    generator_name = "squared_euclidean"


@register_loss
class ItakuraSaitoLoss(BregmanLoss):
    """Itakura-Saito distance (phi(x) = -log x); positive data only."""

    name = "bregman_itakura_saito"
    generator_name = "itakura_saito"


@register_loss
class GeneralizedIDivergenceLoss(BregmanLoss):
    """Generalized I-divergence (phi(x) = x log x); positive data only."""

    name = "bregman_generalized_i"
    generator_name = "generalized_i"


def bregman_divergence(name: str, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Evaluate a named generator's divergence (reference helper)."""
    try:
        generator = GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown Bregman generator {name!r}; "
            f"available: {sorted(GENERATORS)}"
        ) from None
    return generator.divergence(np.asarray(x, dtype=np.float64),
                                np.asarray(y, dtype=np.float64))
