"""Weighted aggregation primitives used by CRH truth updates.

The truth step of CRH (Eq. 3) reduces to a weighted statistic per entry:
weighted vote for the 0-1 loss, weighted mean for the squared losses,
weighted median for the absolute loss.  This module implements each both
as a readable scalar reference (used in tests as the oracle) and as a
vectorized column-parallel version (used by the solver).

The weighted median follows the paper's definition (Eq. 16, after
[Cormen et al., Ch. 9]): it is the claimed value ``v_j`` such that the
weight strictly below it is ``< W/2`` and the weight strictly above it is
``<= W/2``, where ``W`` is the total weight.  Equivalently: the first value,
in sorted order, at which the cumulative weight reaches ``W/2``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def _reaches_half(mass: float, total: float) -> bool:
    """Eq. 16's crossing test: has cumulative weight reached ``W/2``?

    Both scalar medians route every crossing decision through this one
    comparison on :func:`math.fsum`-exact masses, so ties at exactly
    ``W/2`` resolve identically regardless of summation order.
    """
    return 2.0 * mass >= total


def weighted_median(values: Sequence[float],
                    weights: Sequence[float]) -> float:
    """Scalar weighted median per Eq. 16 of the paper.

    ``values`` and ``weights`` must be equal-length and non-empty with
    non-negative weights; zero-total weight falls back to the unweighted
    median of the values.  Cumulative masses are evaluated with
    :func:`math.fsum` (exactly rounded), so boundary ties at ``W/2`` do
    not depend on summation order.
    """
    vals = np.asarray(values, dtype=np.float64)
    wts = np.asarray(weights, dtype=np.float64)
    if vals.shape != wts.shape or vals.ndim != 1:
        raise ValueError(
            f"values {vals.shape} and weights {wts.shape} must be equal-"
            f"length 1-d arrays"
        )
    if vals.size == 0:
        raise ValueError("weighted median of empty set")
    if (wts < 0).any():
        raise ValueError("weights must be non-negative")
    total = math.fsum(wts)
    if total <= 0:
        wts = np.ones_like(wts)
        total = float(vals.size)
    order = np.argsort(vals, kind="stable")
    sorted_wts = wts[order]
    # First sorted position where cumulative weight reaches half the total:
    # below it the mass is < W/2, above it the mass is <= W/2 (Eq. 16).
    # The prefix mass is monotone in the position, so binary-search it.
    lo, hi = 0, vals.size - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if _reaches_half(math.fsum(sorted_wts[:mid + 1]), total):
            hi = mid
        else:
            lo = mid + 1
    return float(vals[order][lo])


def weighted_median_select(values: Sequence[float],
                           weights: Sequence[float]) -> float:
    """Weighted median by expected-linear-time selection.

    This is the algorithm the paper's Eq. 16 cites ([Cormen et al.,
    Ch. 9]): partition around a pivot, recurse into the side holding the
    weighted halfway point; both functions return the identical value
    (property-tested).  The crossing masses are recomputed over the full
    input with :func:`math.fsum`, so every ``W/2`` decision is made on
    the exactly rounded sum and agrees with :func:`weighted_median` even
    when a cumulative weight lands exactly on ``W/2``.  The solver's hot
    path stays with the vectorized sort-based version because numpy's
    sort beats a Python quickselect at every realistic size — this
    function documents and verifies the paper's referenced algorithm.
    """
    vals = np.asarray(values, dtype=np.float64)
    wts = np.asarray(weights, dtype=np.float64)
    if vals.shape != wts.shape or vals.ndim != 1:
        raise ValueError(
            f"values {vals.shape} and weights {wts.shape} must be equal-"
            f"length 1-d arrays"
        )
    if vals.size == 0:
        raise ValueError("weighted median of empty set")
    if (wts < 0).any():
        raise ValueError("weights must be non-negative")
    if math.fsum(wts) <= 0:
        wts = np.ones_like(wts)
    total = math.fsum(wts)
    rng = np.random.default_rng(0)  # deterministic pivots

    candidates = vals
    while True:
        if candidates.size == 1:
            return float(candidates[0])
        pivot = float(candidates[rng.integers(0, candidates.size)])
        mass_below = math.fsum(wts[vals < pivot])
        mass_at = math.fsum(wts[vals <= pivot])
        # Eq. 16: the median is the first value where the cumulative
        # weight reaches half the total.
        if _reaches_half(mass_below, total):
            below = candidates < pivot
            if not below.any():
                return pivot
            candidates = candidates[below]
        elif _reaches_half(mass_at, total):
            return pivot
        else:
            candidates = candidates[candidates > pivot]


def weighted_mean(values: Sequence[float],
                  weights: Sequence[float]) -> float:
    """Scalar weighted mean (truth update of Eq. 14)."""
    vals = np.asarray(values, dtype=np.float64)
    wts = np.asarray(weights, dtype=np.float64)
    if vals.size == 0:
        raise ValueError("weighted mean of empty set")
    if (wts < 0).any():
        raise ValueError("weights must be non-negative")
    total = wts.sum()
    if total <= 0:
        return float(vals.mean())
    return float((vals * wts).sum() / total)


def weighted_mode(values: Sequence[int], weights: Sequence[float],
                  n_categories: int | None = None) -> int:
    """Scalar weighted vote (Eq. 9): the code with the largest weight sum.

    Ties break toward the smallest code, which keeps results deterministic
    across runs and platforms.
    """
    vals = np.asarray(values, dtype=np.int64)
    wts = np.asarray(weights, dtype=np.float64)
    if vals.size == 0:
        raise ValueError("weighted mode of empty set")
    if (vals < 0).any():
        raise ValueError("category codes must be non-negative")
    size = int(vals.max()) + 1 if n_categories is None else n_categories
    scores = np.zeros(size, dtype=np.float64)
    np.add.at(scores, vals, wts)
    return int(scores.argmax())


# ----------------------------------------------------------------------
# Column-parallel versions over (K, N) matrices with missing values
# ----------------------------------------------------------------------

def weighted_median_columns(values: np.ndarray,
                            weights: np.ndarray) -> np.ndarray:
    """Weighted median of every column of a ``(K, N)`` matrix.

    ``NaN`` cells are missing observations and carry no weight.  Columns
    with no observation yield ``NaN``; columns whose observed weight sums
    to zero fall back to the unweighted median of their observed values.
    """
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"expected (K, N) matrix, got {values.shape}")
    if weights.shape != (values.shape[0],):
        raise ValueError(
            f"weights shape {weights.shape} != (K={values.shape[0]},)"
        )
    observed = ~np.isnan(values)
    weight_matrix = np.where(observed, weights[:, None], 0.0)
    # Columns with observations but zero total weight: use uniform weights
    # there so the median is still defined (mirrors the scalar fallback).
    totals = weight_matrix.sum(axis=0)
    zero_weight = (totals <= 0) & observed.any(axis=0)
    if zero_weight.any():
        weight_matrix[:, zero_weight] = np.where(
            observed[:, zero_weight], 1.0, 0.0
        )
        totals = weight_matrix.sum(axis=0)

    # np.sort places NaN last, so missing cells sink to the bottom of each
    # column and their zero weights never perturb the cumulative sums.
    order = np.argsort(values, axis=0, kind="stable")
    sorted_values = np.take_along_axis(values, order, axis=0)
    sorted_weights = np.take_along_axis(weight_matrix, order, axis=0)
    cumulative = np.cumsum(sorted_weights, axis=0)

    half = totals / 2.0
    reached = cumulative >= half[None, :] - 1e-12
    # First row index where the cumulative weight reaches W/2.
    first = reached.argmax(axis=0)
    result = sorted_values[first, np.arange(values.shape[1])]
    result = np.where(totals > 0, result, np.nan)
    return result


def weighted_mean_columns(values: np.ndarray,
                          weights: np.ndarray) -> np.ndarray:
    """Weighted mean of every column of a ``(K, N)`` matrix (NaN-aware)."""
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    observed = ~np.isnan(values)
    weight_matrix = np.where(observed, weights[:, None], 0.0)
    totals = weight_matrix.sum(axis=0)
    zero_weight = (totals <= 0) & observed.any(axis=0)
    if zero_weight.any():
        weight_matrix[:, zero_weight] = np.where(
            observed[:, zero_weight], 1.0, 0.0
        )
        totals = weight_matrix.sum(axis=0)
    sums = np.nansum(values * weight_matrix, axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        result = sums / totals
    return np.where(totals > 0, result, np.nan)


def weighted_vote_columns(codes: np.ndarray, weights: np.ndarray,
                          n_categories: int) -> np.ndarray:
    """Weighted vote per column of a ``(K, N)`` code matrix (Eq. 9).

    ``codes`` holds non-negative category codes with ``-1`` for missing.
    Returns an ``int32`` vector with ``-1`` for columns nobody observed.
    Ties break toward the smallest code.
    """
    codes = np.asarray(codes)
    weights = np.asarray(weights, dtype=np.float64)
    if codes.ndim != 2:
        raise ValueError(f"expected (K, N) matrix, got {codes.shape}")
    k, n = codes.shape
    observed = codes >= 0
    weight_matrix = np.where(observed, weights[:, None], 0.0)
    totals = weight_matrix.sum(axis=0)
    zero_weight = (totals <= 0) & observed.any(axis=0)
    if zero_weight.any():
        weight_matrix[:, zero_weight] = np.where(
            observed[:, zero_weight], 1.0, 0.0
        )
    scores = np.zeros((n_categories, n), dtype=np.float64)
    columns = np.broadcast_to(np.arange(n), (k, n))
    np.add.at(
        scores,
        (codes[observed], columns[observed]),
        weight_matrix[observed],
    )
    winners = scores.argmax(axis=0).astype(np.int32)
    winners[~observed.any(axis=0)] = -1
    return winners


def column_std(values: np.ndarray, floor: float = 1e-12) -> np.ndarray:
    """Per-column standard deviation across observed sources.

    This is the ``std(v^1_im, ..., v^K_im)`` normalizer of Eqs. 13/15.
    Columns where the std would be zero (single observation, or unanimous
    sources) fall back to 1.0 so the loss degrades to an unnormalized
    distance instead of dividing by zero.
    """
    values = np.asarray(values, dtype=np.float64)
    observed = ~np.isnan(values)
    counts = observed.sum(axis=0)
    # Hand-rolled nan-std: np.nanstd warns on all-NaN columns, which are
    # legitimate here (entries nobody observed fall back to std 1.0).
    filled = np.where(observed, values, 0.0)
    safe_counts = np.maximum(counts, 1)
    mean = filled.sum(axis=0) / safe_counts
    variance = (
        np.where(observed, (values - mean[None, :]) ** 2, 0.0).sum(axis=0)
        / safe_counts
    )
    std = np.sqrt(variance)
    return np.where((std <= floor) | (counts < 2), 1.0, std)
