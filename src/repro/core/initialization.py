"""Truth initialization strategies (Section 2.5, "Initialization").

The paper initializes the truths with Voting/Averaging-style estimates and
reports that this is "typically a good start".  All strategies here return
one initial truth column per property; the solver then alternates weight
and truth steps from that point.

Strategies run on the property's *claim view* (see
:mod:`repro.core.kernels`), so they accept dense and sparse datasets
interchangeably and both execution backends initialize bit-identically.
"""

from __future__ import annotations

import numpy as np

from ..data.encoding import MISSING_CODE
from .kernels import (
    segment_weighted_mean,
    segment_weighted_median,
    segment_weighted_vote,
)


def initialize_vote_median(dataset) -> list[np.ndarray]:
    """Majority vote for categorical, median for continuous (paper default)."""
    columns: list[np.ndarray] = []
    for prop in dataset.properties:
        view = prop.claim_view()
        uniform = np.ones(view.n_claims, dtype=np.float64)
        if prop.schema.is_continuous:
            columns.append(segment_weighted_median(
                view.values, uniform, view.indptr,
                group_of_claim=view.object_idx,
            ))
        else:
            columns.append(segment_weighted_vote(
                view.values, uniform, view.indptr,
                n_categories=len(prop.codec),
                group_of_claim=view.object_idx,
            ))
    return columns


def initialize_vote_mean(dataset) -> list[np.ndarray]:
    """Majority vote for categorical, mean for continuous (Averaging)."""
    columns: list[np.ndarray] = []
    for prop in dataset.properties:
        view = prop.claim_view()
        uniform = np.ones(view.n_claims, dtype=np.float64)
        if prop.schema.is_continuous:
            columns.append(segment_weighted_mean(
                view.values, uniform, view.indptr,
                group_of_claim=view.object_idx,
            ))
        else:
            columns.append(segment_weighted_vote(
                view.values, uniform, view.indptr,
                n_categories=len(prop.codec),
                group_of_claim=view.object_idx,
            ))
    return columns


def initialize_random(dataset, rng: np.random.Generator) -> list[np.ndarray]:
    """Pick a random claimed value per entry (the ablation's weak start).

    Sampling from *claimed* values (rather than arbitrary points) keeps the
    initialization in the feasible region every loss can score.  Noise is
    drawn per claim in canonical claim order, so both backends consume the
    generator identically.
    """
    columns: list[np.ndarray] = []
    for prop in dataset.properties:
        view = prop.claim_view()
        n = view.n_objects
        noise = rng.random(view.n_claims)
        # Claim with the largest noise in each group wins: sort by
        # (group, noise) and take the last claim of each group segment.
        order = np.lexsort((noise, view.object_idx))
        sizes = np.diff(view.indptr)
        nonempty = sizes > 0
        chosen = order[view.indptr[1:][nonempty] - 1]
        if prop.schema.uses_codec:
            column = np.full(n, MISSING_CODE, dtype=np.int32)
        else:
            column = np.full(n, np.nan, dtype=np.float64)
        column[nonempty] = view.values[chosen]
        columns.append(column)
    return columns


def initializer_by_name(name: str):
    """Look up an initializer; random initializers need an ``rng`` kwarg."""
    strategies = {
        "vote_median": initialize_vote_median,
        "vote_mean": initialize_vote_mean,
        "random": initialize_random,
    }
    try:
        return strategies[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; "
            f"registered: {sorted(strategies)}"
        ) from None
