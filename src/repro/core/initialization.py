"""Truth initialization strategies (Section 2.5, "Initialization").

The paper initializes the truths with Voting/Averaging-style estimates and
reports that this is "typically a good start".  All strategies here return
one initial truth column per property; the solver then alternates weight
and truth steps from that point.
"""

from __future__ import annotations

import numpy as np

from ..data.encoding import MISSING_CODE
from ..data.table import MultiSourceDataset
from .weighted_stats import (
    weighted_mean_columns,
    weighted_median_columns,
    weighted_vote_columns,
)


def _uniform(dataset: MultiSourceDataset) -> np.ndarray:
    return np.ones(dataset.n_sources, dtype=np.float64)


def initialize_vote_median(dataset: MultiSourceDataset) -> list[np.ndarray]:
    """Majority vote for categorical, median for continuous (paper default)."""
    columns: list[np.ndarray] = []
    uniform = _uniform(dataset)
    for prop in dataset.properties:
        if prop.schema.is_continuous:
            columns.append(weighted_median_columns(prop.values, uniform))
        else:
            columns.append(
                weighted_vote_columns(prop.values, uniform,
                                      n_categories=len(prop.codec))
            )
    return columns


def initialize_vote_mean(dataset: MultiSourceDataset) -> list[np.ndarray]:
    """Majority vote for categorical, mean for continuous (Averaging)."""
    columns: list[np.ndarray] = []
    uniform = _uniform(dataset)
    for prop in dataset.properties:
        if prop.schema.is_continuous:
            columns.append(weighted_mean_columns(prop.values, uniform))
        else:
            columns.append(
                weighted_vote_columns(prop.values, uniform,
                                      n_categories=len(prop.codec))
            )
    return columns


def initialize_random(dataset: MultiSourceDataset,
                      rng: np.random.Generator) -> list[np.ndarray]:
    """Pick a random claimed value per entry (the ablation's weak start).

    Sampling from *claimed* values (rather than arbitrary points) keeps the
    initialization in the feasible region every loss can score.
    """
    columns: list[np.ndarray] = []
    for prop in dataset.properties:
        observed = prop.observed_mask()
        k, n = prop.values.shape
        # Choose, per column, a uniformly random observed row.
        noise = rng.random((k, n))
        noise[~observed] = -1.0
        chosen_rows = noise.argmax(axis=0)
        column = prop.values[chosen_rows, np.arange(n)].copy()
        empty = ~observed.any(axis=0)
        if prop.schema.uses_codec:
            column = column.astype(np.int32)
            column[empty] = MISSING_CODE
        else:
            column = column.astype(np.float64)
            column[empty] = np.nan
        columns.append(column)
    return columns


def initializer_by_name(name: str):
    """Look up an initializer; random initializers need an ``rng`` kwarg."""
    strategies = {
        "vote_median": initialize_vote_median,
        "vote_mean": initialize_vote_mean,
        "random": initialize_random,
    }
    try:
        return strategies[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; "
            f"registered: {sorted(strategies)}"
        ) from None
