"""Result container returned by the CRH solver and compatible methods."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..data.table import MultiSourceDataset, TruthTable


@dataclass
class TruthDiscoveryResult:
    """Output of a truth-discovery run.

    Attributes
    ----------
    truths:
        The estimated truth table ``X*`` (one hard decision per entry).
    weights:
        ``(K,)`` estimated source weights, aligned with
        ``truths``/``dataset`` source order.  Baselines that produce
        trust/accuracy scores report them here so Fig. 1's reliability
        comparison treats every method uniformly.
    source_ids:
        Source identifiers aligned with ``weights``.
    method:
        Human-readable method name (e.g. ``"CRH"``, ``"TruthFinder"``).
    iterations:
        Number of optimization iterations performed (0 for one-shot
        methods such as Mean/Median/Voting).
    converged:
        Whether the method's convergence criterion fired before its
        iteration cap.
    objective_history:
        Objective value after every iteration, when the method tracks one.
    elapsed_seconds:
        Wall-clock fit time, filled in by the experiment harness.
    backend:
        Name of the execution backend that actually completed the run
        (``dense``/``sparse``/``process``/``mmap``), or ``None`` for
        methods predating backend execution.  A run that degraded —
        e.g. a ``process`` request whose loss has no worker
        implementation — reports the backend it *finished* on
        (``sparse``), mirroring the trace.
    backend_reason:
        Why that backend ran: the resolution note of
        :func:`repro.engine.make_backend` or, after a degradation, the
        degradation cause (the same string the trace records as
        ``backend_reason``).
    """

    truths: TruthTable
    weights: np.ndarray
    source_ids: tuple[Hashable, ...]
    method: str
    iterations: int = 0
    converged: bool = True
    objective_history: list[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    backend: str | None = None
    backend_reason: str | None = None

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.weights.shape != (len(self.source_ids),):
            raise ValueError(
                f"weights shape {self.weights.shape} does not match "
                f"{len(self.source_ids)} sources"
            )

    def weight_of(self, source_id: Hashable) -> float:
        """Weight of one source by id."""
        return float(self.weights[self.source_ids.index(source_id)])

    def weights_by_source(self) -> dict[Hashable, float]:
        """Weights as a dict keyed by source id."""
        return {
            source: float(weight)
            for source, weight in zip(self.source_ids, self.weights)
        }

    def normalized_weights(self) -> np.ndarray:
        """Weights min-max scaled to [0, 1] (how Fig. 1 compares methods)."""
        w = self.weights
        span = w.max() - w.min()
        if span <= 0:
            return np.full_like(w, 0.5)
        return (w - w.min()) / span


def check_result_alignment(result: TruthDiscoveryResult,
                           dataset: MultiSourceDataset) -> None:
    """Raise if a result does not describe ``dataset``'s objects/sources."""
    if result.source_ids != dataset.source_ids:
        raise ValueError("result and dataset disagree on source identity")
    if result.truths.object_ids != dataset.object_ids:
        raise ValueError("result and dataset disagree on object identity")
    if result.truths.schema.names() != dataset.schema.names():
        raise ValueError("result and dataset disagree on schema")
