"""Kernel-tier dispatch: NumPy default, optional compiled (numba) tier.

The segment kernels in :mod:`repro.core.kernels` have one NumPy
implementation each, plus compiled implementations of the three hottest
ones in :mod:`repro.core.kernels_numba`.  This module decides which
tier a run executes and installs it:

* ``kernel_tier="numpy"`` — the NumPy implementations, always
  available, always the reference.
* ``kernel_tier="numba"`` — the compiled implementations where numba
  is importable **and** a startup self-check reproduced the NumPy
  results bit for bit; otherwise the run falls back to NumPy with the
  cause recorded (the ``kernel_tier_reason`` trace field).
* ``kernel_tier="auto"`` — the session default set via
  :func:`set_kernel_tier` / :func:`use_kernel_tier` when one is
  installed, else numba when available, else NumPy.

Dispatch is a per-process registry: :func:`activate_tier` installs a
tier's implementations for the duration of a ``with`` block and the
kernels consult :func:`kernel_override` per call (one dict lookup; the
empty registry means NumPy).  The process backend re-activates the
parent's tier inside each worker task, so sharded execution follows
the same tier decision as inline execution.  Choosing a tier can never
change a result — the equivalence fuzz in
``tests/test_kernel_tiers.py`` pins numpy-vs-numba bit-identity, and
the self-check enforces it again at activation time on the running
NumPy build.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable

import numpy as np

#: Accepted ``kernel_tier`` values, mirroring ``BACKEND_NAMES``.
KERNEL_TIER_NAMES = ("auto", "numpy", "numba")

#: Kernel names the compiled tier overrides.
COMPILED_KERNELS = ("segment_weighted_median", "segment_weighted_vote",
                    "accumulate_source_deviations")

_SESSION_DEFAULT: str | None = None
_ACTIVE_TIER = "numpy"
_ACTIVE_IMPLS: dict[str, Callable] = {}
#: memoized (available, reason-if-not) of the numba tier self-check
_NUMBA_STATUS: tuple[bool, str | None] | None = None


def kernel_override(name: str):
    """The active tier's implementation of ``name``, or ``None`` (NumPy)."""
    return _ACTIVE_IMPLS.get(name)


def active_kernel_tier() -> str:
    """Name of the tier currently installed in this process."""
    return _ACTIVE_TIER


def _self_check() -> str | None:
    """Compare the compiled kernels against NumPy on a fixed workload.

    Returns ``None`` when every result is bit-identical, else a short
    description of the first mismatch.  Guards against a NumPy build
    whose ``reduceat``/pairwise summation differs from the model the
    compiled median replicates.
    """
    from ..data.encoding import MISSING_CODE
    from . import kernels
    from . import kernels_numba as kn

    rng = np.random.default_rng(12345)
    sizes = np.array([0, 1, 2, 3, 7, 8, 9, 60, 130, 300], dtype=np.int64)
    indptr = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    n = int(indptr[-1])
    group = np.repeat(np.arange(sizes.size), sizes)
    values = np.round(rng.normal(size=n), 1)  # rounded -> value ties
    weights = rng.random(n) * rng.choice([0.0, 1e-6, 1.0, 1e6], n)
    weights[group == 2] = 0.0  # a zero-total group
    codes = rng.integers(0, 5, n).astype(np.int32)
    try:
        with activate_tier("numpy"):
            median_np = kernels.segment_weighted_median(
                values, weights, indptr, group_of_claim=group)
            vote_np = kernels.segment_weighted_vote(
                codes, weights, indptr, 5, group_of_claim=group)
        eff, totals = kernels._effective_weights(weights, indptr, group)
        plan = kernels.MedianSortPlan(values, group)
        sorted_weights = eff[plan.order]
        median_nb = np.empty(sizes.size, dtype=np.float64)
        kn.median_core(plan.sorted_values, sorted_weights,
                       indptr[:-1].astype(np.int64), sizes,
                       totals / 2.0 - 1e-12, median_nb)
        vote_nb = np.empty(sizes.size, dtype=np.int32)
        kn.vote_core(codes, eff, indptr, 5, MISSING_CODE, vote_nb)
    except Exception as error:  # pragma: no cover - compilation failure
        return f"compiled-kernel self-check failed to run ({error!r})"
    if not np.array_equal(median_np, median_nb, equal_nan=True):
        return "self-check mismatch in segment_weighted_median"
    if not np.array_equal(vote_np, vote_nb):
        return "self-check mismatch in segment_weighted_vote"
    dev = rng.normal(size=n)
    dev[rng.random(n) < 0.1] = np.nan
    src = rng.integers(0, 7, n).astype(np.int32)
    with activate_tier("numpy"):
        totals_np, counts_np = kernels.accumulate_source_deviations(
            dev, src, 7)
    totals_nb = np.zeros(7)
    counts_nb = np.zeros(7)
    kn.accumulate_core(dev, src, totals_nb, counts_nb)
    if not (np.array_equal(totals_np, totals_nb)
            and np.array_equal(counts_np, counts_nb)):
        return "self-check mismatch in accumulate_source_deviations"
    return None


def numba_tier_status() -> tuple[bool, str | None]:
    """Whether the compiled tier may be activated, memoized.

    Returns ``(True, None)`` when numba imports and the self-check
    passed, else ``(False, reason)`` — the reason becomes the traced
    ``kernel_tier_reason`` of the NumPy fallback.
    """
    global _NUMBA_STATUS
    if _NUMBA_STATUS is None:
        from . import kernels_numba as kn

        if not kn.NUMBA_AVAILABLE:
            _NUMBA_STATUS = (False, kn.NUMBA_UNAVAILABLE_REASON)
        else:
            failure = _self_check()
            _NUMBA_STATUS = (failure is None, failure)
    return _NUMBA_STATUS


def resolve_kernel_tier(requested: str = "auto") -> tuple[str, str]:
    """Resolve a ``kernel_tier`` request to ``(tier, reason)``.

    ``tier`` is the concrete tier to activate (``"numpy"`` or
    ``"numba"``); ``reason`` explains the decision the way
    ``backend_reason`` does — explicit request, session default, auto
    preference, or the fallback cause when numba was requested but is
    unavailable.
    """
    if requested not in KERNEL_TIER_NAMES:
        raise ValueError(
            f"kernel_tier must be one of {KERNEL_TIER_NAMES}, "
            f"got {requested!r}"
        )
    origin = "explicit request"
    if requested == "auto":
        if _SESSION_DEFAULT is not None:
            requested = _SESSION_DEFAULT
            origin = "session default"
        else:
            available, why = numba_tier_status()
            if available:
                return "numba", "auto: compiled tier available (self-check passed)"
            return "numpy", f"auto: {why}"
    if requested == "numpy":
        return "numpy", origin
    available, why = numba_tier_status()
    if available:
        return "numba", origin
    return "numpy", f"numba tier unavailable, NumPy fallback: {why}"


def set_kernel_tier(name: str | None) -> None:
    """Install a session-wide default tier ``"auto"`` resolves to.

    ``None`` (or ``"auto"``) clears the default.  Mirrors
    :func:`repro.engine.set_default_backend`.
    """
    global _SESSION_DEFAULT
    if name is not None and name not in KERNEL_TIER_NAMES:
        raise ValueError(
            f"kernel tier must be one of {KERNEL_TIER_NAMES}, got {name!r}"
        )
    _SESSION_DEFAULT = None if name in (None, "auto") else name


def get_kernel_tier() -> str | None:
    """The session default tier, or ``None`` when unset."""
    return _SESSION_DEFAULT


@contextmanager
def use_kernel_tier(name: str | None):
    """Scoped :func:`set_kernel_tier` (restores the previous default)."""
    previous = _SESSION_DEFAULT
    set_kernel_tier(name)
    try:
        yield
    finally:
        set_kernel_tier(previous)


def _compiled_implementations() -> dict[str, Callable]:
    """The compiled tier's override registry (kernel name -> core)."""
    from . import kernels_numba as kn

    return {
        "segment_weighted_median": kn.median_core,
        "segment_weighted_vote": kn.vote_core,
        "accumulate_source_deviations": kn.accumulate_core,
    }


def _install(tier: str) -> None:
    global _ACTIVE_TIER
    if tier == _ACTIVE_TIER:
        return
    if tier == "numba":
        _ACTIVE_IMPLS.update(_compiled_implementations())
    else:
        _ACTIVE_IMPLS.clear()
    _ACTIVE_TIER = tier


@contextmanager
def activate_tier(tier: str):
    """Install a *resolved* tier for the duration of a ``with`` block.

    ``tier`` must be ``"numpy"`` or ``"numba"`` (resolve ``"auto"``
    through :func:`resolve_kernel_tier` first).  Restores the previous
    tier on exit, exceptions included.
    """
    if tier not in ("numpy", "numba"):
        raise ValueError(
            f"activate_tier takes a resolved tier (numpy/numba), "
            f"got {tier!r}"
        )
    previous = _ACTIVE_TIER
    _install(tier)
    try:
        yield
    finally:
        _install(previous)


def ensure_tier(tier: str) -> None:
    """Install a resolved tier process-wide (no scoping).

    Used by process-backend workers, which receive the parent's resolved
    tier with every task and must match it before running shard
    kernels; idempotent when the tier is already active.
    """
    if tier not in ("numpy", "numba"):
        raise ValueError(
            f"ensure_tier takes a resolved tier (numpy/numba), got {tier!r}"
        )
    _install(tier)
