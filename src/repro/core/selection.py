"""Source selection under the CRH framework (Section 2.3, Eqs. 6-7).

Replacing the exponential regularizer with an Lp-norm or integer
constraint turns the weight step into *source selection*: the solver keeps
only the most reliable source (Eq. 6) or the ``j`` most reliable sources
(Eq. 7) and derives truths from them alone.  These helpers run CRH with
those regularizers and report which sources were selected, plus a cost-
aware variant in the spirit of "Less is more" [27] where each source
carries an inspection cost and selection maximizes reliability per cost
under a budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ..data.table import MultiSourceDataset
from .regularizers import LpNormWeights, TopJSelectionWeights
from .result import TruthDiscoveryResult
from .solver import CRHConfig, CRHSolver


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a source-selection run."""

    result: TruthDiscoveryResult
    selected: tuple[Hashable, ...]

    @property
    def n_selected(self) -> int:
        return len(self.selected)


def _selected_sources(result: TruthDiscoveryResult) -> tuple[Hashable, ...]:
    return tuple(
        source
        for source, weight in zip(result.source_ids, result.weights)
        if weight > 0
    )


def select_best_source(dataset: MultiSourceDataset, p: int = 2,
                       **config_overrides) -> SelectionResult:
    """CRH with the Lp-norm regularizer (Eq. 6): keep one source.

    The returned truths equal the chosen source's observations wherever it
    made them (the optimal objective value of 0 noted in the paper).
    """
    config = CRHConfig(weight_scheme=LpNormWeights(p=p), **config_overrides)
    result = CRHSolver(config).fit(dataset)
    result.method = f"CRH-L{p}"
    return SelectionResult(result=result, selected=_selected_sources(result))


def select_top_j_sources(dataset: MultiSourceDataset, j: int,
                         **config_overrides) -> SelectionResult:
    """CRH with the integer constraint (Eq. 7): keep the best ``j`` sources."""
    config = CRHConfig(weight_scheme=TopJSelectionWeights(j=j),
                       **config_overrides)
    result = CRHSolver(config).fit(dataset)
    result.method = f"CRH-top{j}"
    return SelectionResult(result=result, selected=_selected_sources(result))


def select_under_budget(
    dataset: MultiSourceDataset,
    costs: Sequence[float],
    budget: float,
    **config_overrides,
) -> SelectionResult:
    """Cost-aware source selection (the extra constraint sketched via [27]).

    Runs one full CRH pass to estimate reliability, then greedily admits
    sources by reliability-per-cost until the budget is exhausted, and
    finally re-solves CRH on the admitted subset.  Greedy is the standard
    approximation for this knapsack-like selection; the point here is the
    framework hook (costs enter as constraints), not optimality.
    """
    costs_arr = np.asarray(costs, dtype=np.float64)
    if costs_arr.shape != (dataset.n_sources,):
        raise ValueError(
            f"costs shape {costs_arr.shape} != (K={dataset.n_sources},)"
        )
    if (costs_arr <= 0).any():
        raise ValueError("source costs must be positive")
    if budget < costs_arr.min():
        raise ValueError("budget admits no source at all")

    pilot = CRHSolver(CRHConfig(**config_overrides)).fit(dataset)
    utility = pilot.normalized_weights() / costs_arr
    admitted: list[int] = []
    remaining = float(budget)
    for k in np.argsort(-utility, kind="stable"):
        if costs_arr[k] <= remaining:
            admitted.append(int(k))
            remaining -= float(costs_arr[k])
    admitted.sort()

    subset = dataset.select_sources(np.asarray(admitted))
    sub_result = CRHSolver(CRHConfig(**config_overrides)).fit(subset)
    sub_result.method = "CRH-budget"
    return SelectionResult(
        result=sub_result,
        selected=tuple(dataset.source_ids[k] for k in admitted),
    )
