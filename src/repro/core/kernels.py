"""Pure, stateless execution kernels shared by all three CRH engines.

Every engine — the sequential solver, the MapReduce simulation, and
streaming I-CRH — reduces to the same per-property math.  This module is
the single implementation of that math, expressed over the *claim view*
``(values, source_idx, object_idx, indptr)`` of
:class:`~repro.data.claims_matrix.ClaimView`: flat parallel arrays of
claims grouped into contiguous CSR segments.

Kernel -> paper equation map:

======================================  ==================================
kernel                                  paper equation
======================================  ==================================
:func:`segment_weighted_vote`           Eq. 9 (weighted voting)
:func:`segment_label_distribution`      Eq. 12 (probability truth update)
:func:`segment_weighted_mean`           Eq. 14 (weighted mean)
:func:`segment_weighted_median`         Eq. 16 (weighted median,
                                        half-mass rule)
:func:`segment_weighted_medoid`         Eq. 3 restricted to claimed
                                        strings (text medoid)
:func:`segment_std`                     std normalizer of Eqs. 13/15
:func:`segment_sum`                     plain per-group sums (GTM
                                        posterior statistics, Eq. 2/5
                                        style reductions)
:func:`segment_huber_irls`              Huber truth step (IRLS on the
                                        Eq. 14/16 interpolation)
:func:`zero_one_claim_deviations`       Eq. 8
:func:`probability_claim_deviations`    Eq. 11 (closed form)
:func:`squared_claim_deviations`        Eq. 13
:func:`absolute_claim_deviations`       Eq. 15
:func:`huber_claim_deviations`          Huber deviation (robust loss)
:func:`bregman_claim_deviations`        Bregman divergence deviations
                                        (Section 2.5's [29] family)
:func:`accumulate_source_deviations`    per-source sums feeding Eq. 2/5
======================================  ==================================

All kernels are deterministic and order-stable: groups with a tied vote
pick the smallest code, weighted medians follow the half-mass rule
(first sorted value whose cumulative weight reaches ``W/2 - 1e-12``),
and zero-total-weight groups fall back to uniform weights — matching the
scalar oracles in :mod:`repro.core.weighted_stats`.  Because both
execution backends feed kernels the identical canonically-ordered claim
view, dense and sparse runs are bit-identical.

Every public kernel reports wall time and call counts to the active
:class:`~repro.observability.profiling.MemoryProfiler` when one is
installed (see :func:`repro.observability.profiling.activate`); with no
active profiler — the default — the per-call cost is one module
attribute read and an ``is None`` branch, and results are bit-identical.
"""

from __future__ import annotations

import functools
import time
from typing import Callable

import numpy as np

from ..data.encoding import MISSING_CODE
from ..observability import profiling as _profiling
from . import dispatch as _dispatch


def _profiled(fn):
    """Report the wrapped kernel's wall time to the active profiler.

    With no active profiler the wrapper is a single global read plus a
    branch — unmeasurable next to the vectorized kernel bodies (bounded
    by ``benchmarks/bench_core_primitives.py``) and numerically inert.
    """
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        profiler = _profiling.ACTIVE
        if profiler is None:
            return fn(*args, **kwargs)
        started = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            profiler.record_kernel(name, time.perf_counter() - started)

    return wrapper


def _segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Sum ``values`` within each CSR segment; empty segments sum to 0.

    ``np.add.reduceat`` alone mishandles empty segments (it returns
    ``values[i]`` when two boundaries coincide and raises at the end),
    so the reduction runs over the non-empty starts only — consecutive
    non-empty starts bound their segments correctly because intervening
    empty segments contribute no rows.
    """
    sizes = np.diff(indptr)
    sums = np.zeros(sizes.shape[0], dtype=np.float64)
    nonempty = np.flatnonzero(sizes > 0)
    if nonempty.size:
        sums[nonempty] = np.add.reduceat(
            np.asarray(values, dtype=np.float64), indptr[nonempty]
        )
    return sums


def _group_of_claim(indptr: np.ndarray) -> np.ndarray:
    """Group index of every claim, derived from the CSR row pointer."""
    sizes = np.diff(indptr)
    return np.repeat(np.arange(sizes.shape[0]), sizes)


def _effective_weights(
    claim_weights: np.ndarray, indptr: np.ndarray,
    group_of_claim: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-claim weights with the zero-total-group fallback applied.

    Groups whose claims all carry zero weight fall back to uniform
    weights (each claim weighs 1), mirroring the scalar oracles; returns
    ``(effective_claim_weights, per_group_totals)``.
    """
    claim_weights = np.asarray(claim_weights, dtype=np.float64)
    totals = _segment_sums(claim_weights, indptr)
    sizes = np.diff(indptr)
    zero = (totals <= 0) & (sizes > 0)
    if zero.any():
        claim_weights = np.where(zero[group_of_claim], 1.0, claim_weights)
        totals = np.where(zero, sizes.astype(np.float64), totals)
    return claim_weights, totals


def effective_claim_weights(
    claim_weights: np.ndarray, indptr: np.ndarray,
    group_of_claim: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Public form of the per-claim effective-weight computation.

    Returns ``(effective_claim_weights, per_group_totals)`` with the
    zero-total-group uniform fallback applied — the pair every
    truth-step kernel derives internally.  Callers that run several
    kernels over the same claim weights (the Huber loss's median warm
    start + IRLS, the fused multi-property sweep) compute it once and
    pass it through the kernels' ``effective=`` parameter, skipping the
    per-kernel recomputation without changing a single bit.
    """
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    return _effective_weights(claim_weights, indptr, group_of_claim)


class MedianSortPlan:
    """Reusable sort structure of :func:`segment_weighted_median`.

    The kernel's dominant cost is the ``np.lexsort`` into ``(group,
    value)`` order — an order that depends only on the claim values and
    grouping, never on the iteration's weights.  A plan captures that
    order (plus the values gathered into it and a reusable weight
    scratch buffer, one trailing slot wide so ``np.add.reduceat`` can
    take a prefix ending at the array's full length), so every
    iteration of a solve pays one weight gather instead of a fresh
    sort.  :meth:`~repro.data.claims_matrix.ClaimView.median_plan`
    caches one plan per claim view — the arrays a plan is built from
    are immutable for the view's lifetime.

    Once the sort is amortized away, the next cost tier is the bundle
    of segment arrays the kernel derives from ``indptr`` on every call
    — starts, sizes, the occupied-group index, the binary search's
    initial bounds.  Those are just as iteration-invariant as the sort
    order, so :meth:`segments` computes them once (lazily, from the
    first ``indptr`` the kernel passes in — the plan's grouping is
    derived from that same ``indptr``, so it never changes for the
    plan's lifetime) together with per-call ``lo`` / ``hi`` /
    ``threshold`` scratch buffers.

    The scratch buffers make a plan single-threaded state, like the
    profiler: two concurrent median calls over one plan would race on
    them.  Every engine (including the process backend, whose workers
    hold per-shard views in distinct processes) runs kernels on one
    thread, so this is the same contract the rest of the kernel layer
    already has.
    """

    __slots__ = ("order", "sorted_values", "weight_scratch",
                 "starts", "sizes", "occupied", "_hi0",
                 "_lo", "_hi", "_threshold")

    def __init__(self, values: np.ndarray,
                 group_of_claim: np.ndarray,
                 indptr: np.ndarray | None = None) -> None:
        values = np.asarray(values, dtype=np.float64)
        self.order = np.lexsort((values, group_of_claim))
        self.sorted_values = values[self.order]
        self.weight_scratch = np.empty(values.shape[0] + 1,
                                       dtype=np.float64)
        self.starts = None
        if indptr is not None:
            self.segments(indptr)

    def segments(self, indptr: np.ndarray) -> "MedianSortPlan":
        """Cache the segment arrays derived from ``indptr``; returns self.

        Pure reuse: the cached arrays hold exactly the values the
        kernel would compute per call (same dtypes, same contents).
        """
        if self.starts is None:
            self.starts = np.asarray(indptr[:-1], dtype=np.int64)
            self.sizes = np.diff(indptr).astype(np.int64)
            self.occupied = np.flatnonzero(self.sizes > 0)
            self._hi0 = np.maximum(self.sizes - 1, 0)
            n_groups = self.sizes.shape[0]
            self._lo = np.empty(n_groups, dtype=np.int64)
            self._hi = np.empty(n_groups, dtype=np.int64)
            self._threshold = np.empty(n_groups, dtype=np.float64)
        return self


@_profiled
def segment_weighted_mean(values: np.ndarray, claim_weights: np.ndarray,
                          indptr: np.ndarray,
                          group_of_claim: np.ndarray | None = None,
                          effective: tuple[np.ndarray, np.ndarray]
                          | None = None) -> np.ndarray:
    """Weighted mean of every claim group (Eq. 14); ``NaN`` when empty.

    ``effective`` optionally supplies the precomputed
    :func:`effective_claim_weights` pair (pure reuse, bit-identical).
    """
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    weights, totals = (effective if effective is not None
                       else _effective_weights(claim_weights, indptr,
                                               group_of_claim))
    sums = _segment_sums(
        np.asarray(values, dtype=np.float64) * weights, indptr
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        result = sums / totals
    return np.where(totals > 0, result, np.nan)


@_profiled
def segment_weighted_median(values: np.ndarray, claim_weights: np.ndarray,
                            indptr: np.ndarray,
                            group_of_claim: np.ndarray | None = None,
                            plan: MedianSortPlan | None = None,
                            effective: tuple[np.ndarray, np.ndarray]
                            | None = None) -> np.ndarray:
    """Weighted median of every claim group (Eq. 16); ``NaN`` when empty.

    Implements the paper's half-mass rule: sort each group's claims by
    value (stable, so equal values keep source order), accumulate
    weights, and pick the first claim whose cumulative weight reaches
    ``W/2 - 1e-12``.

    ``plan`` optionally supplies a precomputed
    :class:`MedianSortPlan` for exactly these ``values`` /
    ``group_of_claim`` arrays (claim views cache one), skipping the
    dominant ``np.lexsort``; ``effective`` optionally supplies the
    :func:`effective_claim_weights` pair so fused callers don't
    recompute it.  Both are pure reuse — the result is bit-identical
    with or without them.

    Every prefix mass is evaluated *segment-locally* (a reduction over
    the group's own rows only, never a global running sum), so the
    result for a group is a pure function of that group's claims.  This
    is what lets the process backend evaluate shards of the claim array
    independently and still match the single-array backends bit for bit.
    """
    values = np.asarray(values, dtype=np.float64)
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    weights, totals = (effective if effective is not None
                       else _effective_weights(claim_weights, indptr,
                                               group_of_claim))
    n_groups = indptr.shape[0] - 1
    if plan is None:
        plan = MedianSortPlan(values, group_of_claim, indptr)
    else:
        plan.segments(indptr)
    sorted_values = plan.sorted_values
    # The scratch's one trailing zero lets reduceat accept a prefix
    # ending at the array's full length without changing any prefix sum.
    sorted_weights = plan.weight_scratch
    np.take(weights, plan.order, out=sorted_weights[:-1])
    sorted_weights[-1] = 0.0

    starts = plan.starts
    sizes = plan.sizes
    # totals / 2 is an exact binary scaling, written in place into the
    # plan's threshold scratch to keep the call allocation-free.
    threshold = plan._threshold
    np.divide(totals, 2.0, out=threshold)
    threshold -= 1e-12
    core = _dispatch.kernel_override("segment_weighted_median")
    if core is not None:
        result = np.empty(n_groups, dtype=np.float64)
        core(sorted_values, sorted_weights, starts, sizes, threshold,
             result)
        return result
    # Per-group binary search over the claim rank: find the first sorted
    # row whose segment-local prefix mass reaches the half-mass
    # threshold.  Prefix masses are non-decreasing in the rank (weights
    # are non-negative and float addition of non-negative terms is
    # monotone), and the full-group prefix always reaches the threshold,
    # so the search converges to the first crossing.
    lo = plan._lo
    lo.fill(0)
    hi = plan._hi
    np.copyto(hi, plan._hi0)
    occupied = plan.occupied
    while True:
        open_ = occupied[lo[occupied] < hi[occupied]]
        if open_.size == 0:
            break
        mid = (lo[open_] + hi[open_]) >> 1
        bounds = np.empty(2 * open_.size, dtype=np.int64)
        bounds[0::2] = starts[open_]
        bounds[1::2] = starts[open_] + mid + 1
        prefix_mass = np.add.reduceat(sorted_weights, bounds)[0::2]
        reached = prefix_mass >= threshold[open_]
        hi[open_[reached]] = mid[reached]
        lo[open_[~reached]] = mid[~reached] + 1
    result = np.full(n_groups, np.nan)
    result[occupied] = sorted_values[starts[occupied] + lo[occupied]]
    return result


#: Above this many ``n_categories * n_groups`` score cells the vote
#: kernel switches from the dense score matrix to the sparse
#: claimed-cells path (same winners; see the kernel docstring).
VOTE_DENSE_SCORE_CELLS = 4_000_000


@_profiled
def segment_weighted_vote(codes: np.ndarray, claim_weights: np.ndarray,
                          indptr: np.ndarray, n_categories: int,
                          group_of_claim: np.ndarray | None = None,
                          effective: tuple[np.ndarray, np.ndarray]
                          | None = None) -> np.ndarray:
    """Weighted vote per claim group (Eq. 9).

    Returns an ``int32`` vector of winning codes, ``MISSING_CODE`` for
    empty groups; ties break toward the smallest code.  ``effective``
    optionally supplies the precomputed :func:`effective_claim_weights`
    pair (pure reuse, bit-identical).

    Past :data:`VOTE_DENSE_SCORE_CELLS` score cells the dense
    ``(n_categories, n_groups)`` matrix is replaced by a sparse
    reduction over the *claimed* ``(group, code)`` cells only, keeping
    peak memory proportional to the number of claims instead of the
    category vocabulary.  The winners are identical: per-cell scores
    accumulate in claim order exactly like the dense ``np.add.at``,
    effective weights are non-negative (the zero-total fallback makes
    every occupied group's total positive), so an unclaimed category's
    implicit 0.0 score can never beat the claimed maximum, and the
    sorted-cell scan reproduces ``argmax``'s tie-to-smallest-code rule.
    """
    codes = np.asarray(codes)
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    weights, _ = (effective if effective is not None
                  else _effective_weights(claim_weights, indptr,
                                          group_of_claim))
    n_groups = indptr.shape[0] - 1
    core = _dispatch.kernel_override("segment_weighted_vote")
    if core is not None:
        winners = np.empty(n_groups, dtype=np.int32)
        core(codes, weights, np.asarray(indptr, dtype=np.int64),
             n_categories, MISSING_CODE, winners)
        return winners
    if n_categories * n_groups > VOTE_DENSE_SCORE_CELLS:
        return _sparse_weighted_vote(codes, weights, group_of_claim,
                                     n_groups, n_categories)
    scores = np.zeros((n_categories, n_groups), dtype=np.float64)
    np.add.at(scores, (codes, group_of_claim), weights)
    winners = scores.argmax(axis=0).astype(np.int32)
    winners[np.diff(indptr) == 0] = MISSING_CODE
    return winners


def _sparse_weighted_vote(codes: np.ndarray, weights: np.ndarray,
                          group_of_claim: np.ndarray, n_groups: int,
                          n_categories: int) -> np.ndarray:
    """Vote winners via the claimed ``(group, code)`` cells only.

    Memory is O(claims): flatten each claim to its cell id, sum weights
    per unique cell (``np.bincount`` over the inverse index accumulates
    in claim order, matching the dense ``np.add.at`` bit for bit), then
    take each occupied group's first maximal cell — cells sort
    group-major and code-ascending, so the minimum maximal cell is
    ``argmax``'s smallest-code tie-break.
    """
    winners = np.full(n_groups, MISSING_CODE, dtype=np.int32)
    if codes.shape[0] == 0:
        return winners
    cells = n_categories * group_of_claim.astype(np.int64) + codes
    unique_cells, inverse = np.unique(cells, return_inverse=True)
    cell_scores = np.bincount(inverse, weights=weights,
                              minlength=unique_cells.shape[0])
    group_of_cell = unique_cells // n_categories
    run_starts = np.flatnonzero(np.diff(group_of_cell, prepend=-1))
    run_sizes = np.diff(np.append(run_starts, group_of_cell.shape[0]))
    maxima = np.maximum.reduceat(cell_scores, run_starts)
    is_max = cell_scores == np.repeat(maxima, run_sizes)
    candidates = np.where(is_max, unique_cells, np.iinfo(np.int64).max)
    winner_cells = np.minimum.reduceat(candidates, run_starts)
    winners[group_of_cell[run_starts]] = \
        (winner_cells % n_categories).astype(np.int32)
    return winners


@_profiled
def segment_label_distribution(
    codes: np.ndarray, claim_weights: np.ndarray, indptr: np.ndarray,
    n_categories: int, group_of_claim: np.ndarray | None = None,
    effective: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group label distribution (Eq. 12) plus its hard arg-max.

    Returns ``(distribution, column)`` where ``distribution`` is an
    ``(L, G)`` matrix of per-group category probabilities (all-zero for
    empty groups) and ``column`` the ``int32`` arg-max codes
    (``MISSING_CODE`` for empty groups).  ``effective`` optionally
    supplies the precomputed :func:`effective_claim_weights` pair (pure
    reuse, bit-identical).
    """
    codes = np.asarray(codes)
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    weights, totals = (effective if effective is not None
                       else _effective_weights(claim_weights, indptr,
                                               group_of_claim))
    n_groups = indptr.shape[0] - 1
    scores = np.zeros((n_categories, n_groups), dtype=np.float64)
    np.add.at(scores, (codes, group_of_claim), weights)
    with np.errstate(invalid="ignore", divide="ignore"):
        distribution = scores / totals[None, :]
    empty = totals <= 0
    distribution[:, empty] = 0.0
    column = distribution.argmax(axis=0).astype(np.int32)
    column[empty] = MISSING_CODE
    return distribution, column


@_profiled
def segment_std(values: np.ndarray, indptr: np.ndarray,
                group_of_claim: np.ndarray | None = None,
                floor: float = 1e-12) -> np.ndarray:
    """Per-group standard deviation — the normalizer of Eqs. 13/15.

    Two-pass (mean then centered squares) like
    :func:`repro.core.weighted_stats.column_std`; groups with fewer than
    two claims, or a std at/below ``floor``, fall back to 1.0 so the
    losses degrade to unnormalized distances instead of dividing by zero.
    """
    values = np.asarray(values, dtype=np.float64)
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    counts = np.diff(indptr)
    safe_counts = np.maximum(counts, 1)
    mean = _segment_sums(values, indptr) / safe_counts
    centered_sq = (values - mean[group_of_claim]) ** 2
    variance = _segment_sums(centered_sq, indptr) / safe_counts
    std = np.sqrt(variance)
    return np.where((std <= floor) | (counts < 2), 1.0, std)


@_profiled
def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Plain per-group sums over a CSR segmentation; empty groups sum to 0.

    The unweighted reduction primitive behind the GTM baseline's
    posterior statistics (and any per-entry accumulation expressed over
    the claim view).  Segment-local like every kernel here, so sharded
    and chunked execution reproduce the single-array result bit for bit.
    """
    return _segment_sums(values, indptr)


@_profiled
def segment_huber_irls(
    values: np.ndarray, claim_weights: np.ndarray, indptr: np.ndarray,
    stds: np.ndarray, initial: np.ndarray, *, delta: float,
    iterations: int, tol: float,
    group_of_claim: np.ndarray | None = None,
    effective: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Huber-loss truth step: per-group IRLS from a warm start.

    ``effective`` optionally supplies the precomputed
    :func:`effective_claim_weights` pair (pure reuse, bit-identical).

    Iteratively reweighted least squares for the per-entry minimizer of
    the weighted Huber cost: each round multiplies the claim weights by
    the Huber influence factor ``min(1, delta / |r|)`` of the
    standardized residual ``r`` and re-solves the weighted mean.
    ``initial`` (typically the weighted median) seeds the residuals.

    Convergence is evaluated *per group*: a group freezes permanently
    once its own update moves less than ``tol``, independent of every
    other group.  A group's trajectory is therefore a pure function of
    its own claims, which keeps sharded (process) and chunked (mmap)
    execution bit-identical to the single-array backends.
    """
    values = np.asarray(values, dtype=np.float64)
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    weights, _ = (effective if effective is not None
                  else _effective_weights(claim_weights, indptr,
                                          group_of_claim))
    stds = np.asarray(stds, dtype=np.float64)
    truth = np.asarray(initial, dtype=np.float64).copy()
    active = np.diff(indptr) > 0
    claim_std = stds[group_of_claim]
    for _ in range(iterations):
        if not active.any():
            break
        residual = (values - truth[group_of_claim]) / claim_std
        magnitude = np.abs(residual)
        with np.errstate(invalid="ignore", divide="ignore"):
            irls = np.where(magnitude <= delta, 1.0, delta / magnitude)
        irls = np.where(np.isfinite(irls), irls, 1.0)
        reweighted = weights * irls
        totals = _segment_sums(reweighted, indptr)
        sums = _segment_sums(values * reweighted, indptr)
        with np.errstate(invalid="ignore", divide="ignore"):
            update = np.where(totals > 0, sums / totals, truth)
        moved = np.abs(update - truth)
        truth = np.where(active, update, truth)
        # Freeze groups whose own update settled; NaN deltas (all-NaN
        # groups) freeze too — further rounds cannot change them.
        active = active & ~((moved < tol) | ~np.isfinite(moved))
    return truth


@_profiled
def segment_weighted_medoid(
    codes: np.ndarray, claim_weights: np.ndarray, indptr: np.ndarray,
    pair_distance: Callable[[int, int], float],
) -> np.ndarray:
    """Weighted medoid per claim group — the text truth update.

    Picks, per group, the claimed code minimizing the weight-summed
    ``pair_distance`` to the group's claims (Eq. 3 restricted to claimed
    values).  Ties break toward the first candidate in sorted-code
    order.  Returns ``int32`` codes with ``MISSING_CODE`` for empty
    groups.
    """
    codes = np.asarray(codes)
    claim_weights = np.asarray(claim_weights, dtype=np.float64)
    n_groups = indptr.shape[0] - 1
    column = np.full(n_groups, MISSING_CODE, dtype=np.int32)
    for g in range(n_groups):
        lo, hi = indptr[g], indptr[g + 1]
        if lo == hi:
            continue
        entry_codes = codes[lo:hi]
        entry_weights = claim_weights[lo:hi]
        if entry_weights.sum() <= 0:
            entry_weights = np.ones_like(entry_weights)
        candidates = np.unique(entry_codes)
        if candidates.size == 1:
            column[g] = candidates[0]
            continue
        best_code = int(candidates[0])
        best_cost = np.inf
        for candidate in candidates:
            cost = sum(
                w * pair_distance(int(candidate), int(code))
                for code, w in zip(entry_codes, entry_weights)
            )
            if cost < best_cost:
                best_cost = cost
                best_code = int(candidate)
        column[g] = best_code
    return column


# ----------------------------------------------------------------------
# per-claim deviations (the d_m terms of Eq. 2/5)
# ----------------------------------------------------------------------

@_profiled
def zero_one_claim_deviations(codes: np.ndarray, truth_codes: np.ndarray,
                              object_idx: np.ndarray,
                              out: np.ndarray | None = None) -> np.ndarray:
    """0-1 deviation of every claim from its entry's truth (Eq. 8).

    ``out``, when given, receives the result in place of a fresh
    allocation (all deviation kernels share this contract; results are
    bit-identical either way).
    """
    truths = np.asarray(truth_codes)[object_idx]
    mismatch = np.asarray(codes) != truths
    if out is None:
        return mismatch.astype(np.float64)
    np.copyto(out, mismatch)
    return out


@_profiled
def probability_claim_deviations(codes: np.ndarray,
                                 distribution: np.ndarray,
                                 object_idx: np.ndarray,
                                 out: np.ndarray | None = None,
                                 ) -> np.ndarray:
    """Squared one-hot deviation of every claim (Eq. 11, closed form).

    ``||p - e_c||^2 = sum_l p_l^2 - 2 p_c + 1`` evaluated against the
    entry's probability column of ``distribution`` (an ``(L, G)``
    matrix) — no one-hot vectors are materialized.  ``out`` optionally
    receives the result.
    """
    squared_norm = (np.asarray(distribution) ** 2).sum(axis=0)
    p_claimed = distribution[np.asarray(codes), object_idx]
    if out is None:
        out = np.empty(object_idx.shape[0], dtype=np.float64)
    np.take(squared_norm, object_idx, out=out)
    out -= 2.0 * p_claimed
    out += 1.0
    return out


@_profiled
def squared_claim_deviations(values: np.ndarray, truths: np.ndarray,
                             stds: np.ndarray, object_idx: np.ndarray,
                             out: np.ndarray | None = None) -> np.ndarray:
    """Std-normalized squared deviation of every claim (Eq. 13).

    ``out`` optionally receives the result (bit-identical either way).
    """
    values = np.asarray(values, dtype=np.float64)
    if out is None:
        out = np.empty(values.shape[0], dtype=np.float64)
    np.take(np.asarray(truths, dtype=np.float64), object_idx, out=out)
    np.subtract(values, out, out=out)
    np.square(out, out=out)
    out /= np.asarray(stds)[object_idx]
    return out


@_profiled
def absolute_claim_deviations(values: np.ndarray, truths: np.ndarray,
                              stds: np.ndarray, object_idx: np.ndarray,
                              out: np.ndarray | None = None) -> np.ndarray:
    """Std-normalized absolute deviation of every claim (Eq. 15).

    ``out`` optionally receives the result (bit-identical either way).
    """
    values = np.asarray(values, dtype=np.float64)
    if out is None:
        out = np.empty(values.shape[0], dtype=np.float64)
    np.take(np.asarray(truths, dtype=np.float64), object_idx, out=out)
    np.subtract(values, out, out=out)
    np.abs(out, out=out)
    out /= np.asarray(stds)[object_idx]
    return out


@_profiled
def huber_claim_deviations(values: np.ndarray, truths: np.ndarray,
                           stds: np.ndarray, object_idx: np.ndarray,
                           delta: float,
                           out: np.ndarray | None = None) -> np.ndarray:
    """Huber deviation of every claim from its entry's truth.

    The standardized residual ``r = (v - x*) / std`` scored by the Huber
    function: quadratic (``r^2 / 2``) inside ``[-delta, delta]``, linear
    (``delta (|r| - delta / 2)``) outside — the robust-loss counterpart
    of :func:`squared_claim_deviations` / :func:`absolute_claim_deviations`.
    ``out`` optionally receives the result (bit-identical either way).
    """
    values = np.asarray(values, dtype=np.float64)
    if out is None:
        out = np.empty(values.shape[0], dtype=np.float64)
    np.take(np.asarray(truths, dtype=np.float64), object_idx, out=out)
    np.subtract(values, out, out=out)
    out /= np.asarray(stds)[object_idx]
    magnitude = np.abs(out)
    linear = magnitude <= delta
    np.square(out, out=out)
    out *= 0.5
    np.copyto(out, delta * (magnitude - 0.5 * delta), where=~linear)
    return out


@_profiled
def bregman_claim_deviations(values: np.ndarray, truths: np.ndarray,
                             indptr: np.ndarray, object_idx: np.ndarray,
                             divergence,
                             out: np.ndarray | None = None) -> np.ndarray:
    """Scale-normalized Bregman divergence of every claim (Section 2.5).

    ``divergence(values, truths)`` is one generator's vectorized
    ``d_phi(x, y)`` (see :data:`repro.core.bregman.GENERATORS`); the raw
    divergences are divided by their per-entry mean so entries with
    large divergences don't dominate the weight step — mirroring the
    std normalization of Eqs. 13/15.  The per-entry scale is a
    *segment-local* reduction (mean over the entry's own claims, with
    non-positive or non-finite scales falling back to 1.0), so sharded
    and chunked execution stay bit-identical — provided shards never
    split an entry's claim segment, which both parallel backends
    guarantee.  ``out`` optionally receives the result (bit-identical
    either way).
    """
    values = np.asarray(values, dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        raw = divergence(values, np.asarray(truths)[object_idx])
    finite = np.isfinite(raw)
    counts = _segment_sums(finite.astype(np.float64), indptr)
    sums = _segment_sums(np.where(finite, raw, 0.0), indptr)
    with np.errstate(invalid="ignore", divide="ignore"):
        scale = sums / counts
    scale = np.where((counts > 0) & np.isfinite(scale) & (scale > 1e-12),
                     scale, 1.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        if out is None:
            return raw / scale[object_idx]
        np.divide(raw, scale[object_idx], out=out)
    return out


@_profiled
def accumulate_source_deviations(
    claim_deviations: np.ndarray, source_idx: np.ndarray, n_sources: int,
    out: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate per-claim deviations into per-source sums and counts.

    The ``(sum, count)`` pair feeds the weight step (Eq. 2/5) and the
    count normalization of Section 2.5.  Claims with a non-finite
    deviation (their entry's truth is still unset) contribute nothing.
    ``out``, when given, is a preallocated ``(totals, counts)`` float64
    pair of length ``n_sources`` that receives the result (bit-identical
    either way).
    """
    claim_deviations = np.asarray(claim_deviations, dtype=np.float64)
    core = _dispatch.kernel_override("accumulate_source_deviations")
    if core is not None:
        if out is None:
            totals = np.zeros(n_sources, dtype=np.float64)
            counts = np.zeros(n_sources, dtype=np.float64)
        else:
            totals, counts = out
            totals[:] = 0.0
            counts[:] = 0.0
        core(claim_deviations, np.asarray(source_idx), totals, counts)
        return totals, counts
    finite = np.isfinite(claim_deviations)
    if not finite.all():
        source_idx = np.asarray(source_idx)[finite]
        claim_deviations = claim_deviations[finite]
    totals = np.bincount(source_idx, weights=claim_deviations,
                         minlength=n_sources).astype(np.float64)
    counts = np.bincount(source_idx,
                         minlength=n_sources).astype(np.float64)
    if out is not None:
        out_totals, out_counts = out
        np.copyto(out_totals, totals)
        np.copyto(out_counts, counts)
        return out_totals, out_counts
    return totals, counts


@_profiled
def scatter_claims_to_matrix(view, claim_values: np.ndarray,
                             fill=np.nan) -> np.ndarray:
    """Scatter per-claim values back into a dense ``(K, N)`` matrix.

    The compatibility bridge for consumers of the dense
    ``Loss.deviations`` API (fine-grained weights, CATD): unclaimed
    cells get ``fill`` (``NaN`` by default).
    """
    matrix = np.full((view.n_sources, view.n_objects), fill,
                     dtype=np.float64)
    matrix[view.source_idx, view.object_idx] = claim_values
    return matrix
