"""Pure, stateless execution kernels shared by all three CRH engines.

Every engine — the sequential solver, the MapReduce simulation, and
streaming I-CRH — reduces to the same per-property math.  This module is
the single implementation of that math, expressed over the *claim view*
``(values, source_idx, object_idx, indptr)`` of
:class:`~repro.data.claims_matrix.ClaimView`: flat parallel arrays of
claims grouped into contiguous CSR segments.

Kernel -> paper equation map:

======================================  ==================================
kernel                                  paper equation
======================================  ==================================
:func:`segment_weighted_vote`           Eq. 9 (weighted voting)
:func:`segment_label_distribution`      Eq. 12 (probability truth update)
:func:`segment_weighted_mean`           Eq. 14 (weighted mean)
:func:`segment_weighted_median`         Eq. 16 (weighted median,
                                        half-mass rule)
:func:`segment_weighted_medoid`         Eq. 3 restricted to claimed
                                        strings (text medoid)
:func:`segment_std`                     std normalizer of Eqs. 13/15
:func:`segment_sum`                     plain per-group sums (GTM
                                        posterior statistics, Eq. 2/5
                                        style reductions)
:func:`segment_huber_irls`              Huber truth step (IRLS on the
                                        Eq. 14/16 interpolation)
:func:`zero_one_claim_deviations`       Eq. 8
:func:`probability_claim_deviations`    Eq. 11 (closed form)
:func:`squared_claim_deviations`        Eq. 13
:func:`absolute_claim_deviations`       Eq. 15
:func:`huber_claim_deviations`          Huber deviation (robust loss)
:func:`bregman_claim_deviations`        Bregman divergence deviations
                                        (Section 2.5's [29] family)
:func:`accumulate_source_deviations`    per-source sums feeding Eq. 2/5
======================================  ==================================

All kernels are deterministic and order-stable: groups with a tied vote
pick the smallest code, weighted medians follow the half-mass rule
(first sorted value whose cumulative weight reaches ``W/2 - 1e-12``),
and zero-total-weight groups fall back to uniform weights — matching the
scalar oracles in :mod:`repro.core.weighted_stats`.  Because both
execution backends feed kernels the identical canonically-ordered claim
view, dense and sparse runs are bit-identical.

Every public kernel reports wall time and call counts to the active
:class:`~repro.observability.profiling.MemoryProfiler` when one is
installed (see :func:`repro.observability.profiling.activate`); with no
active profiler — the default — the per-call cost is one module
attribute read and an ``is None`` branch, and results are bit-identical.
"""

from __future__ import annotations

import functools
import time
from typing import Callable

import numpy as np

from ..data.encoding import MISSING_CODE
from ..observability import profiling as _profiling


def _profiled(fn):
    """Report the wrapped kernel's wall time to the active profiler.

    With no active profiler the wrapper is a single global read plus a
    branch — unmeasurable next to the vectorized kernel bodies (bounded
    by ``benchmarks/bench_core_primitives.py``) and numerically inert.
    """
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        profiler = _profiling.ACTIVE
        if profiler is None:
            return fn(*args, **kwargs)
        started = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            profiler.record_kernel(name, time.perf_counter() - started)

    return wrapper


def _segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Sum ``values`` within each CSR segment; empty segments sum to 0.

    ``np.add.reduceat`` alone mishandles empty segments (it returns
    ``values[i]`` when two boundaries coincide and raises at the end),
    so the reduction runs over the non-empty starts only — consecutive
    non-empty starts bound their segments correctly because intervening
    empty segments contribute no rows.
    """
    sizes = np.diff(indptr)
    sums = np.zeros(sizes.shape[0], dtype=np.float64)
    nonempty = np.flatnonzero(sizes > 0)
    if nonempty.size:
        sums[nonempty] = np.add.reduceat(
            np.asarray(values, dtype=np.float64), indptr[nonempty]
        )
    return sums


def _group_of_claim(indptr: np.ndarray) -> np.ndarray:
    """Group index of every claim, derived from the CSR row pointer."""
    sizes = np.diff(indptr)
    return np.repeat(np.arange(sizes.shape[0]), sizes)


def _effective_weights(
    claim_weights: np.ndarray, indptr: np.ndarray,
    group_of_claim: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-claim weights with the zero-total-group fallback applied.

    Groups whose claims all carry zero weight fall back to uniform
    weights (each claim weighs 1), mirroring the scalar oracles; returns
    ``(effective_claim_weights, per_group_totals)``.
    """
    claim_weights = np.asarray(claim_weights, dtype=np.float64)
    totals = _segment_sums(claim_weights, indptr)
    sizes = np.diff(indptr)
    zero = (totals <= 0) & (sizes > 0)
    if zero.any():
        claim_weights = np.where(zero[group_of_claim], 1.0, claim_weights)
        totals = np.where(zero, sizes.astype(np.float64), totals)
    return claim_weights, totals


@_profiled
def segment_weighted_mean(values: np.ndarray, claim_weights: np.ndarray,
                          indptr: np.ndarray,
                          group_of_claim: np.ndarray | None = None,
                          ) -> np.ndarray:
    """Weighted mean of every claim group (Eq. 14); ``NaN`` when empty."""
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    weights, totals = _effective_weights(claim_weights, indptr,
                                         group_of_claim)
    sums = _segment_sums(
        np.asarray(values, dtype=np.float64) * weights, indptr
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        result = sums / totals
    return np.where(totals > 0, result, np.nan)


@_profiled
def segment_weighted_median(values: np.ndarray, claim_weights: np.ndarray,
                            indptr: np.ndarray,
                            group_of_claim: np.ndarray | None = None,
                            ) -> np.ndarray:
    """Weighted median of every claim group (Eq. 16); ``NaN`` when empty.

    Implements the paper's half-mass rule: sort each group's claims by
    value (stable, so equal values keep source order), accumulate
    weights, and pick the first claim whose cumulative weight reaches
    ``W/2 - 1e-12``.

    Every prefix mass is evaluated *segment-locally* (a reduction over
    the group's own rows only, never a global running sum), so the
    result for a group is a pure function of that group's claims.  This
    is what lets the process backend evaluate shards of the claim array
    independently and still match the single-array backends bit for bit.
    """
    values = np.asarray(values, dtype=np.float64)
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    weights, totals = _effective_weights(claim_weights, indptr,
                                         group_of_claim)
    n_groups = indptr.shape[0] - 1
    order = np.lexsort((values, group_of_claim))
    sorted_values = values[order]
    # One trailing zero lets reduceat accept a prefix ending at the
    # array's full length without changing any prefix sum.
    sorted_weights = np.concatenate([weights[order], [0.0]])

    starts = np.asarray(indptr[:-1], dtype=np.int64)
    sizes = np.diff(indptr).astype(np.int64)
    threshold = totals / 2.0 - 1e-12
    # Per-group binary search over the claim rank: find the first sorted
    # row whose segment-local prefix mass reaches the half-mass
    # threshold.  Prefix masses are non-decreasing in the rank (weights
    # are non-negative and float addition of non-negative terms is
    # monotone), and the full-group prefix always reaches the threshold,
    # so the search converges to the first crossing.
    lo = np.zeros(n_groups, dtype=np.int64)
    hi = np.maximum(sizes - 1, 0)
    occupied = np.flatnonzero(sizes > 0)
    while True:
        open_ = occupied[lo[occupied] < hi[occupied]]
        if open_.size == 0:
            break
        mid = (lo[open_] + hi[open_]) >> 1
        bounds = np.empty(2 * open_.size, dtype=np.int64)
        bounds[0::2] = starts[open_]
        bounds[1::2] = starts[open_] + mid + 1
        prefix_mass = np.add.reduceat(sorted_weights, bounds)[0::2]
        reached = prefix_mass >= threshold[open_]
        hi[open_[reached]] = mid[reached]
        lo[open_[~reached]] = mid[~reached] + 1
    result = np.full(n_groups, np.nan)
    result[occupied] = sorted_values[starts[occupied] + lo[occupied]]
    return result


@_profiled
def segment_weighted_vote(codes: np.ndarray, claim_weights: np.ndarray,
                          indptr: np.ndarray, n_categories: int,
                          group_of_claim: np.ndarray | None = None,
                          ) -> np.ndarray:
    """Weighted vote per claim group (Eq. 9).

    Returns an ``int32`` vector of winning codes, ``MISSING_CODE`` for
    empty groups; ties break toward the smallest code.
    """
    codes = np.asarray(codes)
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    weights, _ = _effective_weights(claim_weights, indptr, group_of_claim)
    n_groups = indptr.shape[0] - 1
    scores = np.zeros((n_categories, n_groups), dtype=np.float64)
    np.add.at(scores, (codes, group_of_claim), weights)
    winners = scores.argmax(axis=0).astype(np.int32)
    winners[np.diff(indptr) == 0] = MISSING_CODE
    return winners


@_profiled
def segment_label_distribution(
    codes: np.ndarray, claim_weights: np.ndarray, indptr: np.ndarray,
    n_categories: int, group_of_claim: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group label distribution (Eq. 12) plus its hard arg-max.

    Returns ``(distribution, column)`` where ``distribution`` is an
    ``(L, G)`` matrix of per-group category probabilities (all-zero for
    empty groups) and ``column`` the ``int32`` arg-max codes
    (``MISSING_CODE`` for empty groups).
    """
    codes = np.asarray(codes)
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    weights, totals = _effective_weights(claim_weights, indptr,
                                         group_of_claim)
    n_groups = indptr.shape[0] - 1
    scores = np.zeros((n_categories, n_groups), dtype=np.float64)
    np.add.at(scores, (codes, group_of_claim), weights)
    with np.errstate(invalid="ignore", divide="ignore"):
        distribution = scores / totals[None, :]
    empty = totals <= 0
    distribution[:, empty] = 0.0
    column = distribution.argmax(axis=0).astype(np.int32)
    column[empty] = MISSING_CODE
    return distribution, column


@_profiled
def segment_std(values: np.ndarray, indptr: np.ndarray,
                group_of_claim: np.ndarray | None = None,
                floor: float = 1e-12) -> np.ndarray:
    """Per-group standard deviation — the normalizer of Eqs. 13/15.

    Two-pass (mean then centered squares) like
    :func:`repro.core.weighted_stats.column_std`; groups with fewer than
    two claims, or a std at/below ``floor``, fall back to 1.0 so the
    losses degrade to unnormalized distances instead of dividing by zero.
    """
    values = np.asarray(values, dtype=np.float64)
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    counts = np.diff(indptr)
    safe_counts = np.maximum(counts, 1)
    mean = _segment_sums(values, indptr) / safe_counts
    centered_sq = (values - mean[group_of_claim]) ** 2
    variance = _segment_sums(centered_sq, indptr) / safe_counts
    std = np.sqrt(variance)
    return np.where((std <= floor) | (counts < 2), 1.0, std)


@_profiled
def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Plain per-group sums over a CSR segmentation; empty groups sum to 0.

    The unweighted reduction primitive behind the GTM baseline's
    posterior statistics (and any per-entry accumulation expressed over
    the claim view).  Segment-local like every kernel here, so sharded
    and chunked execution reproduce the single-array result bit for bit.
    """
    return _segment_sums(values, indptr)


@_profiled
def segment_huber_irls(
    values: np.ndarray, claim_weights: np.ndarray, indptr: np.ndarray,
    stds: np.ndarray, initial: np.ndarray, *, delta: float,
    iterations: int, tol: float,
    group_of_claim: np.ndarray | None = None,
) -> np.ndarray:
    """Huber-loss truth step: per-group IRLS from a warm start.

    Iteratively reweighted least squares for the per-entry minimizer of
    the weighted Huber cost: each round multiplies the claim weights by
    the Huber influence factor ``min(1, delta / |r|)`` of the
    standardized residual ``r`` and re-solves the weighted mean.
    ``initial`` (typically the weighted median) seeds the residuals.

    Convergence is evaluated *per group*: a group freezes permanently
    once its own update moves less than ``tol``, independent of every
    other group.  A group's trajectory is therefore a pure function of
    its own claims, which keeps sharded (process) and chunked (mmap)
    execution bit-identical to the single-array backends.
    """
    values = np.asarray(values, dtype=np.float64)
    if group_of_claim is None:
        group_of_claim = _group_of_claim(indptr)
    weights, _ = _effective_weights(claim_weights, indptr, group_of_claim)
    stds = np.asarray(stds, dtype=np.float64)
    truth = np.asarray(initial, dtype=np.float64).copy()
    active = np.diff(indptr) > 0
    claim_std = stds[group_of_claim]
    for _ in range(iterations):
        if not active.any():
            break
        residual = (values - truth[group_of_claim]) / claim_std
        magnitude = np.abs(residual)
        with np.errstate(invalid="ignore", divide="ignore"):
            irls = np.where(magnitude <= delta, 1.0, delta / magnitude)
        irls = np.where(np.isfinite(irls), irls, 1.0)
        reweighted = weights * irls
        totals = _segment_sums(reweighted, indptr)
        sums = _segment_sums(values * reweighted, indptr)
        with np.errstate(invalid="ignore", divide="ignore"):
            update = np.where(totals > 0, sums / totals, truth)
        moved = np.abs(update - truth)
        truth = np.where(active, update, truth)
        # Freeze groups whose own update settled; NaN deltas (all-NaN
        # groups) freeze too — further rounds cannot change them.
        active = active & ~((moved < tol) | ~np.isfinite(moved))
    return truth


@_profiled
def segment_weighted_medoid(
    codes: np.ndarray, claim_weights: np.ndarray, indptr: np.ndarray,
    pair_distance: Callable[[int, int], float],
) -> np.ndarray:
    """Weighted medoid per claim group — the text truth update.

    Picks, per group, the claimed code minimizing the weight-summed
    ``pair_distance`` to the group's claims (Eq. 3 restricted to claimed
    values).  Ties break toward the first candidate in sorted-code
    order.  Returns ``int32`` codes with ``MISSING_CODE`` for empty
    groups.
    """
    codes = np.asarray(codes)
    claim_weights = np.asarray(claim_weights, dtype=np.float64)
    n_groups = indptr.shape[0] - 1
    column = np.full(n_groups, MISSING_CODE, dtype=np.int32)
    for g in range(n_groups):
        lo, hi = indptr[g], indptr[g + 1]
        if lo == hi:
            continue
        entry_codes = codes[lo:hi]
        entry_weights = claim_weights[lo:hi]
        if entry_weights.sum() <= 0:
            entry_weights = np.ones_like(entry_weights)
        candidates = np.unique(entry_codes)
        if candidates.size == 1:
            column[g] = candidates[0]
            continue
        best_code = int(candidates[0])
        best_cost = np.inf
        for candidate in candidates:
            cost = sum(
                w * pair_distance(int(candidate), int(code))
                for code, w in zip(entry_codes, entry_weights)
            )
            if cost < best_cost:
                best_cost = cost
                best_code = int(candidate)
        column[g] = best_code
    return column


# ----------------------------------------------------------------------
# per-claim deviations (the d_m terms of Eq. 2/5)
# ----------------------------------------------------------------------

@_profiled
def zero_one_claim_deviations(codes: np.ndarray, truth_codes: np.ndarray,
                              object_idx: np.ndarray) -> np.ndarray:
    """0-1 deviation of every claim from its entry's truth (Eq. 8)."""
    truths = np.asarray(truth_codes)[object_idx]
    return (np.asarray(codes) != truths).astype(np.float64)


@_profiled
def probability_claim_deviations(codes: np.ndarray,
                                 distribution: np.ndarray,
                                 object_idx: np.ndarray) -> np.ndarray:
    """Squared one-hot deviation of every claim (Eq. 11, closed form).

    ``||p - e_c||^2 = sum_l p_l^2 - 2 p_c + 1`` evaluated against the
    entry's probability column of ``distribution`` (an ``(L, G)``
    matrix) — no one-hot vectors are materialized.
    """
    squared_norm = (np.asarray(distribution) ** 2).sum(axis=0)
    p_claimed = distribution[np.asarray(codes), object_idx]
    return squared_norm[object_idx] - 2.0 * p_claimed + 1.0


@_profiled
def squared_claim_deviations(values: np.ndarray, truths: np.ndarray,
                             stds: np.ndarray,
                             object_idx: np.ndarray) -> np.ndarray:
    """Std-normalized squared deviation of every claim (Eq. 13)."""
    residual = np.asarray(values, dtype=np.float64) \
        - np.asarray(truths)[object_idx]
    return residual ** 2 / np.asarray(stds)[object_idx]


@_profiled
def absolute_claim_deviations(values: np.ndarray, truths: np.ndarray,
                              stds: np.ndarray,
                              object_idx: np.ndarray) -> np.ndarray:
    """Std-normalized absolute deviation of every claim (Eq. 15)."""
    residual = np.asarray(values, dtype=np.float64) \
        - np.asarray(truths)[object_idx]
    return np.abs(residual) / np.asarray(stds)[object_idx]


@_profiled
def huber_claim_deviations(values: np.ndarray, truths: np.ndarray,
                           stds: np.ndarray, object_idx: np.ndarray,
                           delta: float) -> np.ndarray:
    """Huber deviation of every claim from its entry's truth.

    The standardized residual ``r = (v - x*) / std`` scored by the Huber
    function: quadratic (``r^2 / 2``) inside ``[-delta, delta]``, linear
    (``delta (|r| - delta / 2)``) outside — the robust-loss counterpart
    of :func:`squared_claim_deviations` / :func:`absolute_claim_deviations`.
    """
    residual = (np.asarray(values, dtype=np.float64)
                - np.asarray(truths)[object_idx]) \
        / np.asarray(stds)[object_idx]
    magnitude = np.abs(residual)
    return np.where(magnitude <= delta,
                    0.5 * residual ** 2,
                    delta * (magnitude - 0.5 * delta))


@_profiled
def bregman_claim_deviations(values: np.ndarray, truths: np.ndarray,
                             indptr: np.ndarray, object_idx: np.ndarray,
                             divergence) -> np.ndarray:
    """Scale-normalized Bregman divergence of every claim (Section 2.5).

    ``divergence(values, truths)`` is one generator's vectorized
    ``d_phi(x, y)`` (see :data:`repro.core.bregman.GENERATORS`); the raw
    divergences are divided by their per-entry mean so entries with
    large divergences don't dominate the weight step — mirroring the
    std normalization of Eqs. 13/15.  The per-entry scale is a
    *segment-local* reduction (mean over the entry's own claims, with
    non-positive or non-finite scales falling back to 1.0), so sharded
    and chunked execution stay bit-identical — provided shards never
    split an entry's claim segment, which both parallel backends
    guarantee.
    """
    values = np.asarray(values, dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        raw = divergence(values, np.asarray(truths)[object_idx])
    finite = np.isfinite(raw)
    counts = _segment_sums(finite.astype(np.float64), indptr)
    sums = _segment_sums(np.where(finite, raw, 0.0), indptr)
    with np.errstate(invalid="ignore", divide="ignore"):
        scale = sums / counts
    scale = np.where((counts > 0) & np.isfinite(scale) & (scale > 1e-12),
                     scale, 1.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        return raw / scale[object_idx]


@_profiled
def accumulate_source_deviations(
    claim_deviations: np.ndarray, source_idx: np.ndarray, n_sources: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate per-claim deviations into per-source sums and counts.

    The ``(sum, count)`` pair feeds the weight step (Eq. 2/5) and the
    count normalization of Section 2.5.  Claims with a non-finite
    deviation (their entry's truth is still unset) contribute nothing.
    """
    claim_deviations = np.asarray(claim_deviations, dtype=np.float64)
    finite = np.isfinite(claim_deviations)
    if not finite.all():
        source_idx = np.asarray(source_idx)[finite]
        claim_deviations = claim_deviations[finite]
    totals = np.bincount(source_idx, weights=claim_deviations,
                         minlength=n_sources).astype(np.float64)
    counts = np.bincount(source_idx,
                         minlength=n_sources).astype(np.float64)
    return totals, counts


@_profiled
def scatter_claims_to_matrix(view, claim_values: np.ndarray,
                             fill=np.nan) -> np.ndarray:
    """Scatter per-claim values back into a dense ``(K, N)`` matrix.

    The compatibility bridge for consumers of the dense
    ``Loss.deviations`` API (fine-grained weights, CATD): unclaimed
    cells get ``fill`` (``NaN`` by default).
    """
    matrix = np.full((view.n_sources, view.n_objects), fill,
                     dtype=np.float64)
    matrix[view.source_idx, view.object_idx] = claim_values
    return matrix
