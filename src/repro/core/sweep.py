"""Fused multi-property sweep: shared per-view state, reusable scratch.

One CRH iteration runs a truth step and a deviation pass over every
property of a dataset.  Executed naively, each of the 8+ segment
kernels re-derives the same per-view state — the claim grouping, the
effective (zero-total-fallback-applied) claim weights, the weighted
median's lexsort order — and allocates a fresh per-claim output array
per call.  This module fuses the sweep:

* :func:`resolve_properties` is the fused truth step: per property it
  gathers the claim weights and computes
  :func:`~repro.core.kernels.effective_claim_weights` **once**, then
  hands both to the loss via
  :meth:`~repro.core.losses.Loss.update_truth_fused`; the grouping
  (``view.object_idx``) and the median sort plan
  (:meth:`~repro.data.claims_matrix.ClaimView.median_plan`) are cached
  on the claim view itself, so they are computed once per view
  *lifetime*, not per iteration.
* :class:`SweepContext` owns the iteration-independent scratch: one
  preallocated per-claim deviation buffer per property (filled through
  :meth:`~repro.core.losses.Loss.claim_deviations_into`) and one
  per-source ``(totals, counts)`` pair threaded through
  :func:`~repro.core.kernels.accumulate_source_deviations`, so the
  weight step's reduction allocates nothing per iteration.

Everything here is pure reuse: the kernels receive precomputed values
they would otherwise derive themselves, byte for byte, so fused and
unfused execution are bit-identical (pinned by the solver-equivalence
tests in ``tests/test_kernel_tiers.py``).

The solver's inline execution path (the dense and sparse backends, and
any run degraded off a parallel runner) goes through a
:class:`SweepContext`; the process backend gets the same reuse
shard-locally because its workers cache per-shard claim views, and the
mmap backend recomputes the per-chunk state chunk-locally — acceptable
because chunks stream and own no persistent views.
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .losses import Loss, TruthState
from .objective import DeviationOptions, per_source_deviations


def resolve_properties(dataset, losses: list[Loss],
                       weights: np.ndarray) -> list[TruthState]:
    """Fused truth step across every property of ``dataset``.

    Per property: gather the per-claim weights and compute the
    effective-weight pair once, then run the loss's truth update with
    both precomputed (:meth:`~repro.core.losses.Loss.update_truth_fused`
    falls back to the plain :meth:`~repro.core.losses.Loss.update_truth`
    for custom losses that don't consume them).  Bit-identical to
    calling ``loss.update_truth(prop, weights)`` per property.
    """
    states: list[TruthState] = []
    for prop, loss in zip(dataset.properties, losses):
        view = prop.claim_view()
        claim_weights = view.claim_weights(weights)
        effective = kernels.effective_claim_weights(
            claim_weights, view.indptr, view.object_idx
        )
        states.append(loss.update_truth_fused(
            prop, weights,
            claim_weights=claim_weights, effective=effective,
        ))
    return states


class SweepContext:
    """Reusable fused-sweep state for one dataset + loss assignment.

    Construction allocates the per-property deviation scratch (one
    float64 buffer per property, sized to its claim count) and the
    per-source accumulation pair; both live for the context's lifetime
    and are refilled every iteration.  The scratch makes a context
    single-threaded state, like the kernel layer's sort plans: one
    solve loop per context.
    """

    def __init__(self, dataset, losses: list[Loss],
                 options: DeviationOptions | None = None) -> None:
        self.dataset = dataset
        self.losses = list(losses)
        self.options = options if options is not None else DeviationOptions()
        self._deviation_scratch = [
            np.empty(prop.claim_view().n_claims, dtype=np.float64)
            for prop in dataset.properties
        ]
        n_sources = dataset.n_sources
        self._accumulate_scratch = (
            np.zeros(n_sources, dtype=np.float64),
            np.zeros(n_sources, dtype=np.float64),
        )

    def truth_step(self, weights: np.ndarray) -> list[TruthState]:
        """The fused truth step (:func:`resolve_properties`)."""
        return resolve_properties(self.dataset, self.losses, weights)

    def per_source(self, states: list[TruthState]) -> np.ndarray:
        """The deviation pass through this context's scratch buffers.

        Same reduction as
        :func:`~repro.core.objective.per_source_deviations` — same
        property order, same per-property accumulation — with the
        per-claim deviations written into the preallocated scratch
        instead of fresh arrays.
        """
        return per_source_deviations(
            self.dataset, self.losses, states, self.options,
            claim_deviations=self._fill_deviations,
            accumulate_out=self._accumulate_scratch,
        )

    def _fill_deviations(self, index: int, prop, loss: Loss,
                         state: TruthState) -> np.ndarray:
        """Fill property ``index``'s scratch with its claim deviations."""
        return loss.claim_deviations_into(
            state, prop, self._deviation_scratch[index]
        )
