"""Huber loss for continuous properties.

Section 2.4.2 closes by noting the framework "can take any loss
function".  The Huber loss is the classic middle ground between the
paper's two continuous choices: quadratic near the truth (statistically
efficient, like Eq. 13) and linear in the tails (outlier-robust, like
Eq. 15).  Residuals are normalized by the per-entry cross-source std
first, so the transition point ``delta`` is in entry-std units and the
loss remains scale-free like the published ones.

The truth step has no closed form; the exact per-entry minimizer is
computed by IRLS (iteratively reweighted least squares), warm-started at
the weighted median.  Because the weighted Huber objective is convex in
the truth, IRLS converges to the global per-entry minimum, keeping the
block-coordinate argument of Section 2.5 intact.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import PropertyKind
from ..data.table import PropertyObservations
from .losses import Loss, TruthState, register_loss
from .weighted_stats import weighted_median_columns


@register_loss
class HuberLoss(Loss):
    """Huber loss on std-normalized residuals; IRLS truth update."""

    name = "huber"
    kind = PropertyKind.CONTINUOUS

    #: residual size (in entry-std units) where quadratic turns linear
    delta: float = 1.0
    #: IRLS iterations for the truth step (converges in a handful)
    irls_iterations: int = 25
    irls_tol: float = 1e-9

    def _entry_std(self, aux: dict, prop: PropertyObservations) -> np.ndarray:
        cached = aux.get("std")
        if cached is None:
            from .weighted_stats import column_std
            cached = column_std(prop.values)
            aux["std"] = cached
        return cached

    # ------------------------------------------------------------------
    def initial_state(self, prop: PropertyObservations,
                      init_column: np.ndarray) -> TruthState:
        state = TruthState(column=np.asarray(init_column, dtype=np.float64))
        self._entry_std(state.aux, prop)
        return state

    def update_truth(self, prop: PropertyObservations,
                     weights: np.ndarray) -> TruthState:
        values = prop.values
        observed = ~np.isnan(values)
        state = TruthState(column=weighted_median_columns(values, weights))
        std = self._entry_std(state.aux, prop)
        weight_matrix = np.where(observed, weights[:, None], 0.0)
        totals = weight_matrix.sum(axis=0)
        zero = (totals <= 0) & observed.any(axis=0)
        if zero.any():
            weight_matrix[:, zero] = np.where(observed[:, zero], 1.0, 0.0)

        truth = state.column.copy()
        for _ in range(self.irls_iterations):
            residual = (values - truth[None, :]) / std[None, :]
            magnitude = np.abs(residual)
            with np.errstate(invalid="ignore", divide="ignore"):
                irls = np.where(magnitude <= self.delta, 1.0,
                                self.delta / magnitude)
            irls = np.where(observed, irls, 0.0)
            combined = weight_matrix * irls
            denominator = combined.sum(axis=0)
            with np.errstate(invalid="ignore", divide="ignore"):
                update = np.nansum(
                    np.where(observed, values, 0.0) * combined, axis=0
                ) / denominator
            update = np.where(denominator > 0, update, truth)
            if np.nanmax(np.abs(update - truth), initial=0.0) < self.irls_tol:
                truth = update
                break
            truth = update
        state.column = truth
        return state

    def deviations(self, state: TruthState,
                   prop: PropertyObservations) -> np.ndarray:
        std = self._entry_std(state.aux, prop)
        residual = (prop.values - state.column[None, :]) / std[None, :]
        magnitude = np.abs(residual)
        quadratic = 0.5 * residual ** 2
        linear = self.delta * (magnitude - 0.5 * self.delta)
        return np.where(magnitude <= self.delta, quadratic, linear)


def huber_value(residual: float, delta: float = 1.0) -> float:
    """Scalar Huber function (reference implementation for tests)."""
    magnitude = abs(residual)
    if magnitude <= delta:
        return 0.5 * residual ** 2
    return delta * (magnitude - 0.5 * delta)
