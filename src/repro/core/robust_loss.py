"""Huber loss for continuous properties.

Section 2.4.2 closes by noting the framework "can take any loss
function".  The Huber loss is the classic middle ground between the
paper's two continuous choices: quadratic near the truth (statistically
efficient, like Eq. 13) and linear in the tails (outlier-robust, like
Eq. 15).  Residuals are normalized by the per-entry cross-source std
first, so the transition point ``delta`` is in entry-std units and the
loss remains scale-free like the published ones.

The truth step has no closed form; the exact per-entry minimizer is
computed by IRLS (iteratively reweighted least squares), warm-started at
the weighted median.  Because the weighted Huber objective is convex in
the truth, IRLS converges to the global per-entry minimum, keeping the
block-coordinate argument of Section 2.5 intact.

Like the four published losses, the Huber loss runs entirely on the
claim view: the truth step is :func:`repro.core.kernels.segment_huber_irls`
(seeded by :func:`~repro.core.kernels.segment_weighted_median`) and the
deviations are :func:`repro.core.kernels.huber_claim_deviations`.  IRLS
convergence is checked *per entry* — each entry freezes once its own
update settles — so the iteration count of one entry never depends on
another entry's claims, and sharded (``process``) and chunked (``mmap``)
execution reproduce the single-array backends bit for bit.  The loss is
listed in ``WORKER_LOSSES`` and ``CHUNK_LOSSES`` and runs natively on
all four execution backends.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import PropertyKind
from . import kernels
from .losses import Loss, TruthState, register_loss, _entry_std


@register_loss
class HuberLoss(Loss):
    """Huber loss on std-normalized residuals; IRLS truth update.

    Truth step: :func:`~repro.core.kernels.segment_huber_irls` warm-started
    at the weighted median; deviations:
    :func:`~repro.core.kernels.huber_claim_deviations`.  Supported
    natively on the dense, sparse, process, and mmap backends.
    """

    name = "huber"
    kind = PropertyKind.CONTINUOUS
    uses_entry_std = True

    #: residual size (in entry-std units) where quadratic turns linear
    delta: float = 1.0
    #: IRLS iterations for the truth step (converges in a handful)
    irls_iterations: int = 25
    irls_tol: float = 1e-9

    # ------------------------------------------------------------------
    def initial_state(self, prop, init_column: np.ndarray) -> TruthState:
        """Wrap the initial column; pre-cache the per-entry std."""
        state = TruthState(column=np.asarray(init_column, dtype=np.float64))
        _entry_std(state.aux, prop)
        return state

    def update_truth(self, prop, weights: np.ndarray) -> TruthState:
        return self.update_truth_fused(prop, weights)

    def update_truth_fused(self, prop, weights: np.ndarray, *,
                           claim_weights: np.ndarray | None = None,
                           effective=None) -> TruthState:
        """Per-entry IRLS minimizer of the weighted Huber objective.

        The effective claim weights are computed once and shared by the
        median warm start and the IRLS solve (they derive the identical
        pair internally), and the median reuses the view's cached sort
        plan — pure reuse, bit-identical.
        """
        view = prop.claim_view()
        state = TruthState(column=np.empty(0))
        std = _entry_std(state.aux, prop)
        if claim_weights is None:
            claim_weights = view.claim_weights(weights)
        if effective is None:
            effective = kernels.effective_claim_weights(
                claim_weights, view.indptr, view.object_idx
            )
        initial = kernels.segment_weighted_median(
            view.values, claim_weights, view.indptr,
            group_of_claim=view.object_idx,
            plan=view.median_plan(), effective=effective,
        )
        state.column = kernels.segment_huber_irls(
            view.values, claim_weights, view.indptr, std, initial,
            delta=self.delta, iterations=self.irls_iterations,
            tol=self.irls_tol, group_of_claim=view.object_idx,
            effective=effective,
        )
        return state

    def claim_deviations(self, state: TruthState, prop) -> np.ndarray:
        """Huber deviations per claim (kernel evaluation)."""
        view = prop.claim_view()
        return kernels.huber_claim_deviations(
            view.values, state.column, _entry_std(state.aux, prop),
            view.object_idx, self.delta,
        )

    def claim_deviations_into(self, state: TruthState, prop,
                              out: np.ndarray) -> np.ndarray:
        """Huber deviations into a caller-owned scratch buffer."""
        view = prop.claim_view()
        return kernels.huber_claim_deviations(
            view.values, state.column, _entry_std(state.aux, prop),
            view.object_idx, self.delta, out=out,
        )

    def deviations(self, state: TruthState, prop) -> np.ndarray:
        """Dense ``(K, N)`` bridge over :meth:`claim_deviations`."""
        return kernels.scatter_claims_to_matrix(
            prop.claim_view(), self.claim_deviations(state, prop)
        )


def huber_value(residual: float, delta: float = 1.0) -> float:
    """Scalar Huber function (reference implementation for tests)."""
    magnitude = abs(residual)
    if magnitude <= delta:
        return 0.5 * residual ** 2
    return delta * (magnitude - 0.5 * delta)
