"""Source-weight assignment schemes (Section 2.3).

Given the per-source aggregate deviations ``L_k = sum_i sum_m d_m(...)``
computed under the current truths, a weight scheme solves the weight step
(Eq. 2) for its regularization function:

* :class:`ExponentialWeights` — ``delta(W) = sum_k exp(-w_k)`` (Eq. 4),
  whose closed-form optimum is ``w_k = -log(L_k / normalizer)`` (Eq. 5).
  The paper recommends using the **max** of the deviations as normalizer
  (end of Section 2.3) so differences between sources are emphasized; the
  **sum** normalizer of Eq. 5 is also provided.
* :class:`LpNormWeights` — ``delta(W) = ||W||_p = 1, w_k >= 0`` (Eq. 6).
  Because the weight-step objective is linear in ``W`` and concentrating
  mass on the smallest ``L_k`` coordinate minimizes it for every
  ``p >= 1``, the optimum selects the single most reliable source.
* :class:`TopJSelectionWeights` — ``delta(W) = (1/j) sum_k w_k = 1`` with
  ``w_k`` binary (Eq. 7).  The integer program is linear with a cardinality
  constraint, so ranking sources by ``L_k`` and taking the best ``j`` is
  the exact solution.
"""

from __future__ import annotations

import abc

import numpy as np


class WeightScheme(abc.ABC):
    """Solves the weight step ``argmin_W f(X*, W) s.t. delta(W) = 1``."""

    #: registry key
    name: str

    @abc.abstractmethod
    def weights(self, per_source_loss: np.ndarray) -> np.ndarray:
        """Optimal source weights for the given ``(K,)`` deviation vector."""

    @staticmethod
    def _validated(per_source_loss: np.ndarray) -> np.ndarray:
        loss = np.asarray(per_source_loss, dtype=np.float64)
        if loss.ndim != 1 or loss.size == 0:
            raise ValueError(f"expected non-empty (K,) vector, got {loss.shape}")
        if (loss < 0).any() or np.isnan(loss).any():
            raise ValueError("per-source deviations must be non-negative")
        return loss


class ExponentialWeights(WeightScheme):
    """Closed-form weights for the exponential regularizer (Eqs. 4-5).

    Parameters
    ----------
    normalizer:
        ``"max"`` (the paper's recommended scheme: the least reliable source
        is pinned at weight 0 and the gap to it sets everyone else's
        weight) or ``"sum"`` (the literal Eq. 5).
    floor_ratio:
        A perfect source (zero deviation) would receive infinite weight;
        its deviation is floored at ``floor_ratio * max_k L_k`` so weights
        remain finite while still dominating every imperfect source.
    """

    name = "exponential"

    def __init__(self, normalizer: str = "max",
                 floor_ratio: float = 1e-10) -> None:
        if normalizer not in ("max", "sum"):
            raise ValueError(
                f"normalizer must be 'max' or 'sum', got {normalizer!r}"
            )
        if not 0 < floor_ratio < 1:
            raise ValueError("floor_ratio must be in (0, 1)")
        self.normalizer = normalizer
        self.floor_ratio = floor_ratio

    def weights(self, per_source_loss: np.ndarray) -> np.ndarray:
        loss = self._validated(per_source_loss)
        top = loss.max()
        if top <= 0:
            # Every source matches the truths exactly; all equally reliable.
            return np.ones_like(loss)
        floored = np.maximum(loss, self.floor_ratio * top)
        denominator = top if self.normalizer == "max" else floored.sum()
        w = -np.log(floored / denominator)
        if self.normalizer == "max" and not w.any():
            # All deviations equal: -log(1) == 0 everywhere, which would
            # zero out the truth step.  Equal deviations mean equally
            # reliable sources, so fall back to uniform weights.
            return np.ones_like(loss)
        return w

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialWeights(normalizer={self.normalizer!r})"


class LpNormWeights(WeightScheme):
    """Single-source selection under the Lp-norm constraint (Eq. 6)."""

    name = "lp"

    def __init__(self, p: int = 2) -> None:
        if p < 1:
            raise ValueError(f"p must be a positive integer >= 1, got {p}")
        self.p = int(p)

    def weights(self, per_source_loss: np.ndarray) -> np.ndarray:
        loss = self._validated(per_source_loss)
        w = np.zeros_like(loss)
        w[int(loss.argmin())] = 1.0
        return w

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LpNormWeights(p={self.p})"


class TopJSelectionWeights(WeightScheme):
    """Binary selection of the ``j`` most reliable sources (Eq. 7)."""

    name = "top_j"

    def __init__(self, j: int) -> None:
        if j < 1:
            raise ValueError(f"j must be >= 1, got {j}")
        self.j = int(j)

    def weights(self, per_source_loss: np.ndarray) -> np.ndarray:
        loss = self._validated(per_source_loss)
        if self.j > loss.size:
            raise ValueError(
                f"cannot select j={self.j} sources out of {loss.size}"
            )
        w = np.zeros_like(loss)
        # argsort is stable, so ties resolve toward lower source indices.
        w[np.argsort(loss, kind="stable")[: self.j]] = 1.0
        return w

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TopJSelectionWeights(j={self.j})"


def weight_scheme_by_name(name: str, **kwargs) -> WeightScheme:
    """Instantiate a weight scheme by registry name."""
    schemes: dict[str, type[WeightScheme]] = {
        ExponentialWeights.name: ExponentialWeights,
        LpNormWeights.name: LpNormWeights,
        TopJSelectionWeights.name: TopJSelectionWeights,
    }
    try:
        cls = schemes[name]
    except KeyError:
        raise KeyError(
            f"unknown weight scheme {name!r}; registered: {sorted(schemes)}"
        ) from None
    return cls(**kwargs)
