"""Loss functions plugging heterogeneous data types into CRH (Section 2.4).

Each loss owns both sides of the block-coordinate iteration for the
properties of its kind:

* ``deviations`` — the ``d_m(v*_im, v^(k)_im)`` matrix entering the weight
  step (Eq. 2/5);
* ``update_truth`` — the entry-wise minimizer of Eq. 3 for the truth step.

Implemented losses, with their paper equations:

=====================  ===========  ==============================  =================
loss                   data type    deviation                       truth update
=====================  ===========  ==============================  =================
``zero_one``           categorical  Eq. 8 (0-1 indicator)           Eq. 9 (weighted vote)
``probability``        categorical  Eq. 11 (squared L2 on one-hot)  Eq. 12 (weighted mean of one-hot)
``squared``            continuous   Eq. 13 (squared / entry std)    Eq. 14 (weighted mean)
``absolute``           continuous   Eq. 15 (absolute / entry std)   Eq. 16 (weighted median)
=====================  ===========  ==============================  =================

The paper's recommended configuration (Section 3.1.2) is ``zero_one`` +
``absolute``; ``probability`` + ``squared`` is the provably convergent
Bregman pair (Section 2.5, "Convexity and convergence").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..data.encoding import MISSING_CODE
from ..data.schema import PropertyKind
from ..data.table import PropertyObservations
from .weighted_stats import (
    column_std,
    weighted_mean_columns,
    weighted_median_columns,
    weighted_vote_columns,
)


@dataclass
class TruthState:
    """Per-property solver state.

    ``column`` always holds the hard per-entry decision — an ``int32`` code
    vector for categorical properties, a ``float64`` vector for continuous
    ones — because the paper's outputs and metrics are defined on hard
    decisions.  Soft losses additionally keep a ``distribution`` (an
    ``(L, N)`` matrix of per-entry category probabilities); ``aux`` caches
    loss-specific precomputations (e.g. the per-entry std of Eqs. 13/15).
    """

    column: np.ndarray
    distribution: np.ndarray | None = None
    aux: dict = field(default_factory=dict)


class Loss(abc.ABC):
    """A loss function ``d_m`` for one property kind."""

    #: registry key, e.g. ``"zero_one"``
    name: str
    #: the property kind this loss applies to
    kind: PropertyKind

    @abc.abstractmethod
    def initial_state(self, prop: PropertyObservations,
                      init_column: np.ndarray) -> TruthState:
        """Wrap an initial truth column into solver state."""

    @abc.abstractmethod
    def update_truth(self, prop: PropertyObservations,
                     weights: np.ndarray) -> TruthState:
        """Truth step: per-entry minimizer of Eq. 3 under this loss."""

    @abc.abstractmethod
    def deviations(self, state: TruthState,
                   prop: PropertyObservations) -> np.ndarray:
        """``(K, N)`` matrix of ``d_m`` values; ``NaN`` where unobserved."""

    def objective_contribution(self, state: TruthState,
                               prop: PropertyObservations,
                               weights: np.ndarray) -> float:
        """This property's term of the objective (Eq. 1)."""
        dev = self.deviations(state, prop)
        return float(np.nansum(dev * weights[:, None]))


# ----------------------------------------------------------------------
# categorical losses
# ----------------------------------------------------------------------

class ZeroOneLoss(Loss):
    """0-1 loss (Eq. 8) with weighted-vote truth update (Eq. 9)."""

    name = "zero_one"
    kind = PropertyKind.CATEGORICAL

    def initial_state(self, prop: PropertyObservations,
                      init_column: np.ndarray) -> TruthState:
        return TruthState(column=np.asarray(init_column, dtype=np.int32))

    def update_truth(self, prop: PropertyObservations,
                     weights: np.ndarray) -> TruthState:
        column = weighted_vote_columns(
            prop.values, weights, n_categories=len(prop.codec)
        )
        return TruthState(column=column)

    def deviations(self, state: TruthState,
                   prop: PropertyObservations) -> np.ndarray:
        codes = prop.values
        observed = codes != MISSING_CODE
        mismatch = (codes != state.column[None, :]).astype(np.float64)
        mismatch[~observed] = np.nan
        return mismatch


class ProbabilityVectorLoss(Loss):
    """Squared loss on one-hot encodings (Eqs. 10-12).

    The truth state is a full per-entry probability distribution; the hard
    decision reported in ``column`` is its arg-max ("the most possible
    value").  Deviations use the closed form
    ``||p - e_c||^2 = sum_l p_l^2 - 2 p_c + 1`` so no one-hot matrices are
    materialized per source.
    """

    name = "probability"
    kind = PropertyKind.CATEGORICAL

    def initial_state(self, prop: PropertyObservations,
                      init_column: np.ndarray) -> TruthState:
        n_categories = len(prop.codec)
        n = prop.n_objects
        column = np.asarray(init_column, dtype=np.int32)
        distribution = np.zeros((n_categories, n), dtype=np.float64)
        labeled = column != MISSING_CODE
        distribution[column[labeled], np.flatnonzero(labeled)] = 1.0
        return TruthState(column=column, distribution=distribution)

    def update_truth(self, prop: PropertyObservations,
                     weights: np.ndarray) -> TruthState:
        codes = prop.values
        k, n = codes.shape
        n_categories = len(prop.codec)
        observed = codes != MISSING_CODE
        weight_matrix = np.where(observed, weights[:, None], 0.0)
        totals = weight_matrix.sum(axis=0)
        zero_weight = (totals <= 0) & observed.any(axis=0)
        if zero_weight.any():
            weight_matrix[:, zero_weight] = np.where(
                observed[:, zero_weight], 1.0, 0.0
            )
            totals = weight_matrix.sum(axis=0)
        scores = np.zeros((n_categories, n), dtype=np.float64)
        columns = np.broadcast_to(np.arange(n), (k, n))
        np.add.at(
            scores,
            (codes[observed], columns[observed]),
            weight_matrix[observed],
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            distribution = scores / totals[None, :]
        unseen = totals <= 0
        distribution[:, unseen] = 0.0
        column = distribution.argmax(axis=0).astype(np.int32)
        column[unseen] = MISSING_CODE
        return TruthState(column=column, distribution=distribution)

    def deviations(self, state: TruthState,
                   prop: PropertyObservations) -> np.ndarray:
        if state.distribution is None:
            raise ValueError("probability loss state lacks a distribution")
        codes = prop.values
        observed = codes != MISSING_CODE
        squared_norm = (state.distribution ** 2).sum(axis=0)  # (N,)
        safe_codes = np.where(observed, codes, 0)
        p_claimed = state.distribution[
            safe_codes, np.arange(codes.shape[1])[None, :]
        ]
        dev = squared_norm[None, :] - 2.0 * p_claimed + 1.0
        dev = np.where(observed, dev, np.nan)
        return dev


# ----------------------------------------------------------------------
# continuous losses
# ----------------------------------------------------------------------

def _entry_std(state_aux: dict, prop: PropertyObservations) -> np.ndarray:
    """Per-entry cross-source std, cached per property matrix identity."""
    cached = state_aux.get("std")
    if cached is None:
        cached = column_std(prop.values)
        state_aux["std"] = cached
    return cached


class NormalizedSquaredLoss(Loss):
    """Squared loss normalized by the entry std (Eq. 13); weighted-mean
    truth update (Eq. 14)."""

    name = "squared"
    kind = PropertyKind.CONTINUOUS

    def initial_state(self, prop: PropertyObservations,
                      init_column: np.ndarray) -> TruthState:
        state = TruthState(column=np.asarray(init_column, dtype=np.float64))
        _entry_std(state.aux, prop)
        return state

    def update_truth(self, prop: PropertyObservations,
                     weights: np.ndarray) -> TruthState:
        state = TruthState(
            column=weighted_mean_columns(prop.values, weights)
        )
        _entry_std(state.aux, prop)
        return state

    def deviations(self, state: TruthState,
                   prop: PropertyObservations) -> np.ndarray:
        std = _entry_std(state.aux, prop)
        dev = (prop.values - state.column[None, :]) ** 2 / std[None, :]
        return dev


class NormalizedAbsoluteLoss(Loss):
    """Absolute deviation normalized by the entry std (Eq. 15);
    weighted-median truth update (Eq. 16)."""

    name = "absolute"
    kind = PropertyKind.CONTINUOUS

    def initial_state(self, prop: PropertyObservations,
                      init_column: np.ndarray) -> TruthState:
        state = TruthState(column=np.asarray(init_column, dtype=np.float64))
        _entry_std(state.aux, prop)
        return state

    def update_truth(self, prop: PropertyObservations,
                     weights: np.ndarray) -> TruthState:
        state = TruthState(
            column=weighted_median_columns(prop.values, weights)
        )
        _entry_std(state.aux, prop)
        return state

    def deviations(self, state: TruthState,
                   prop: PropertyObservations) -> np.ndarray:
        std = _entry_std(state.aux, prop)
        dev = np.abs(prop.values - state.column[None, :]) / std[None, :]
        return dev


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_LOSSES: dict[str, type[Loss]] = {
    cls.name: cls
    for cls in (
        ZeroOneLoss,
        ProbabilityVectorLoss,
        NormalizedSquaredLoss,
        NormalizedAbsoluteLoss,
    )
}


def register_loss(cls: type[Loss]) -> type[Loss]:
    """Register a custom loss; usable as a class decorator."""
    if not getattr(cls, "name", None):
        raise ValueError("loss class must define a non-empty `name`")
    if cls.name in _LOSSES:
        raise ValueError(f"loss {cls.name!r} is already registered")
    _LOSSES[cls.name] = cls
    return cls


def loss_by_name(name: str) -> Loss:
    """Instantiate a registered loss by name."""
    try:
        return _LOSSES[name]()
    except KeyError:
        raise KeyError(
            f"unknown loss {name!r}; registered: {sorted(_LOSSES)}"
        ) from None


def available_losses(kind: PropertyKind | None = None) -> tuple[str, ...]:
    """Names of registered losses, optionally filtered by property kind."""
    names = (
        name for name, cls in _LOSSES.items()
        if kind is None or cls.kind is kind
    )
    return tuple(sorted(names))
