"""Loss functions plugging heterogeneous data types into CRH (Section 2.4).

Each loss owns both sides of the block-coordinate iteration for the
properties of its kind:

* ``claim_deviations`` — the per-claim ``d_m(v*_im, v^(k)_im)`` values
  entering the weight step (Eq. 2/5);
* ``update_truth`` — the entry-wise minimizer of Eq. 3 for the truth step;
* ``deviations`` — the dense ``(K, N)`` view of the same deviations, kept
  for consumers that reason over source-by-object matrices (fine-grained
  weights, CATD).

Implemented losses, with their paper equations:

=====================  ===========  ==============================  =================
loss                   data type    deviation                       truth update
=====================  ===========  ==============================  =================
``zero_one``           categorical  Eq. 8 (0-1 indicator)           Eq. 9 (weighted vote)
``probability``        categorical  Eq. 11 (squared L2 on one-hot)  Eq. 12 (weighted mean of one-hot)
``squared``            continuous   Eq. 13 (squared / entry std)    Eq. 14 (weighted mean)
``absolute``           continuous   Eq. 15 (absolute / entry std)   Eq. 16 (weighted median)
=====================  ===========  ==============================  =================

The built-in losses run entirely on the claim view (see
:mod:`repro.core.kernels`), so they accept dense
:class:`~repro.data.table.PropertyObservations` and sparse
:class:`~repro.data.claims_matrix.PropertyClaims` interchangeably — any
property exposing ``claim_view()``, ``codec``, ``schema`` and
``n_objects`` works.  The shipped extensions (:mod:`repro.core.robust_loss`,
:mod:`repro.core.bregman`, :mod:`repro.core.text_loss`) are claim-view
native too.  Custom losses may instead implement only the dense
``deviations``/``update_truth`` pair; they then require a dense property
and fall back to inline sparse execution on the parallel backends.

The paper's recommended configuration (Section 3.1.2) is ``zero_one`` +
``absolute``; ``probability`` + ``squared`` is the provably convergent
Bregman pair (Section 2.5, "Convexity and convergence").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..data.encoding import MISSING_CODE
from ..data.schema import PropertyKind
from . import kernels


@dataclass
class TruthState:
    """Per-property solver state.

    ``column`` always holds the hard per-entry decision — an ``int32`` code
    vector for categorical properties, a ``float64`` vector for continuous
    ones — because the paper's outputs and metrics are defined on hard
    decisions.  Soft losses additionally keep a ``distribution`` (an
    ``(L, N)`` matrix of per-entry category probabilities); ``aux`` caches
    loss-specific precomputations (e.g. the per-entry std of Eqs. 13/15).
    """

    column: np.ndarray
    distribution: np.ndarray | None = None
    aux: dict = field(default_factory=dict)


class Loss(abc.ABC):
    """A loss function ``d_m`` for one property kind.

    ``prop`` arguments are duck-typed: built-in losses only touch the
    claim-view surface (``claim_view()``, ``codec``, ``schema``,
    ``n_objects``), so they run on dense and sparse properties alike.
    """

    #: registry key, e.g. ``"zero_one"``
    name: str
    #: the property kind this loss applies to
    kind: PropertyKind
    #: True when the loss normalizes by the per-entry cross-source std
    #: (Eqs. 13/15); the parallel backends pre-compute and ship that std
    #: alongside the claim arrays for losses that declare it
    uses_entry_std: bool = False

    @abc.abstractmethod
    def initial_state(self, prop, init_column: np.ndarray) -> TruthState:
        """Wrap an initial truth column into solver state."""

    @abc.abstractmethod
    def update_truth(self, prop, weights: np.ndarray) -> TruthState:
        """Truth step: per-entry minimizer of Eq. 3 under this loss."""

    def update_truth_fused(self, prop, weights: np.ndarray, *,
                           claim_weights: np.ndarray | None = None,
                           effective: tuple[np.ndarray, np.ndarray]
                           | None = None) -> TruthState:
        """Truth step with the fused sweep's precomputed per-view state.

        ``claim_weights`` is the per-claim gather of ``weights`` and
        ``effective`` the :func:`~repro.core.kernels.effective_claim_weights`
        pair, both already computed by
        :func:`repro.core.sweep.resolve_properties` for this property's
        claim view.  The default ignores them and calls
        :meth:`update_truth` — always correct for custom losses — while
        the built-in losses override it to pass the precomputed state to
        their kernels.  Results are bit-identical either way.
        """
        return self.update_truth(prop, weights)

    @abc.abstractmethod
    def deviations(self, state: TruthState, prop) -> np.ndarray:
        """``(K, N)`` matrix of ``d_m`` values; ``NaN`` where unobserved."""

    def claim_deviations(self, state: TruthState, prop) -> np.ndarray:
        """Per-claim deviations aligned with ``prop.claim_view()``.

        The default gathers from the dense :meth:`deviations` matrix, so
        dense-only custom losses keep working; built-in losses override
        it with a direct kernel evaluation (and derive :meth:`deviations`
        from it instead).
        """
        view = prop.claim_view()
        dense = self.deviations(state, prop)
        return dense[view.source_idx, view.object_idx]

    def claim_deviations_into(self, state: TruthState, prop,
                              out: np.ndarray) -> np.ndarray:
        """:meth:`claim_deviations` into a caller-owned scratch buffer.

        The fused multi-property sweep (:mod:`repro.core.sweep`) calls
        this with one preallocated per-claim buffer per property so the
        weight step allocates nothing per iteration.  The default copies
        :meth:`claim_deviations`'s result into ``out`` — always correct
        for custom losses — while the built-in losses override it to
        pass ``out`` straight to their deviation kernel.  Results are
        bit-identical to :meth:`claim_deviations` either way.
        """
        result = self.claim_deviations(state, prop)
        if result is not out:
            np.copyto(out, result)
        return out

    def objective_contribution(self, state: TruthState, prop,
                               weights: np.ndarray) -> float:
        """This property's term of the objective (Eq. 1)."""
        view = prop.claim_view()
        dev = self.claim_deviations(state, prop)
        return float(np.nansum(dev * view.claim_weights(weights)))


# ----------------------------------------------------------------------
# categorical losses
# ----------------------------------------------------------------------

class ZeroOneLoss(Loss):
    """0-1 loss (Eq. 8) with weighted-vote truth update (Eq. 9)."""

    name = "zero_one"
    kind = PropertyKind.CATEGORICAL

    def initial_state(self, prop, init_column: np.ndarray) -> TruthState:
        return TruthState(column=np.asarray(init_column, dtype=np.int32))

    def update_truth(self, prop, weights: np.ndarray) -> TruthState:
        return self.update_truth_fused(prop, weights)

    def update_truth_fused(self, prop, weights: np.ndarray, *,
                           claim_weights: np.ndarray | None = None,
                           effective: tuple[np.ndarray, np.ndarray]
                           | None = None) -> TruthState:
        view = prop.claim_view()
        if claim_weights is None:
            claim_weights = view.claim_weights(weights)
        column = kernels.segment_weighted_vote(
            view.values, claim_weights, view.indptr,
            n_categories=len(prop.codec),
            group_of_claim=view.object_idx, effective=effective,
        )
        return TruthState(column=column)

    def claim_deviations(self, state: TruthState, prop) -> np.ndarray:
        view = prop.claim_view()
        return kernels.zero_one_claim_deviations(
            view.values, state.column, view.object_idx
        )

    def claim_deviations_into(self, state: TruthState, prop,
                              out: np.ndarray) -> np.ndarray:
        view = prop.claim_view()
        return kernels.zero_one_claim_deviations(
            view.values, state.column, view.object_idx, out=out
        )

    def deviations(self, state: TruthState, prop) -> np.ndarray:
        return kernels.scatter_claims_to_matrix(
            prop.claim_view(), self.claim_deviations(state, prop)
        )


class ProbabilityVectorLoss(Loss):
    """Squared loss on one-hot encodings (Eqs. 10-12).

    The truth state is a full per-entry probability distribution; the hard
    decision reported in ``column`` is its arg-max ("the most possible
    value").  Deviations use the closed form
    ``||p - e_c||^2 = sum_l p_l^2 - 2 p_c + 1`` so no one-hot matrices are
    materialized per source.
    """

    name = "probability"
    kind = PropertyKind.CATEGORICAL

    def initial_state(self, prop, init_column: np.ndarray) -> TruthState:
        n_categories = len(prop.codec)
        n = prop.n_objects
        column = np.asarray(init_column, dtype=np.int32)
        distribution = np.zeros((n_categories, n), dtype=np.float64)
        labeled = column != MISSING_CODE
        distribution[column[labeled], np.flatnonzero(labeled)] = 1.0
        return TruthState(column=column, distribution=distribution)

    def update_truth(self, prop, weights: np.ndarray) -> TruthState:
        return self.update_truth_fused(prop, weights)

    def update_truth_fused(self, prop, weights: np.ndarray, *,
                           claim_weights: np.ndarray | None = None,
                           effective: tuple[np.ndarray, np.ndarray]
                           | None = None) -> TruthState:
        view = prop.claim_view()
        if claim_weights is None:
            claim_weights = view.claim_weights(weights)
        distribution, column = kernels.segment_label_distribution(
            view.values, claim_weights, view.indptr,
            n_categories=len(prop.codec),
            group_of_claim=view.object_idx, effective=effective,
        )
        return TruthState(column=column, distribution=distribution)

    def claim_deviations(self, state: TruthState, prop) -> np.ndarray:
        if state.distribution is None:
            raise ValueError("probability loss state lacks a distribution")
        view = prop.claim_view()
        return kernels.probability_claim_deviations(
            view.values, state.distribution, view.object_idx
        )

    def claim_deviations_into(self, state: TruthState, prop,
                              out: np.ndarray) -> np.ndarray:
        if state.distribution is None:
            raise ValueError("probability loss state lacks a distribution")
        view = prop.claim_view()
        return kernels.probability_claim_deviations(
            view.values, state.distribution, view.object_idx, out=out
        )

    def deviations(self, state: TruthState, prop) -> np.ndarray:
        return kernels.scatter_claims_to_matrix(
            prop.claim_view(), self.claim_deviations(state, prop)
        )


# ----------------------------------------------------------------------
# continuous losses
# ----------------------------------------------------------------------

def _entry_std(state_aux: dict, prop) -> np.ndarray:
    """Per-entry cross-source std, cached on the property's claim view."""
    cached = state_aux.get("std")
    if cached is None:
        cached = prop.claim_view().entry_std()
        state_aux["std"] = cached
    return cached


class NormalizedSquaredLoss(Loss):
    """Squared loss normalized by the entry std (Eq. 13); weighted-mean
    truth update (Eq. 14)."""

    name = "squared"
    kind = PropertyKind.CONTINUOUS
    uses_entry_std = True

    def initial_state(self, prop, init_column: np.ndarray) -> TruthState:
        state = TruthState(column=np.asarray(init_column, dtype=np.float64))
        _entry_std(state.aux, prop)
        return state

    def update_truth(self, prop, weights: np.ndarray) -> TruthState:
        return self.update_truth_fused(prop, weights)

    def update_truth_fused(self, prop, weights: np.ndarray, *,
                           claim_weights: np.ndarray | None = None,
                           effective: tuple[np.ndarray, np.ndarray]
                           | None = None) -> TruthState:
        view = prop.claim_view()
        if claim_weights is None:
            claim_weights = view.claim_weights(weights)
        state = TruthState(column=kernels.segment_weighted_mean(
            view.values, claim_weights, view.indptr,
            group_of_claim=view.object_idx, effective=effective,
        ))
        _entry_std(state.aux, prop)
        return state

    def claim_deviations(self, state: TruthState, prop) -> np.ndarray:
        view = prop.claim_view()
        return kernels.squared_claim_deviations(
            view.values, state.column, _entry_std(state.aux, prop),
            view.object_idx,
        )

    def claim_deviations_into(self, state: TruthState, prop,
                              out: np.ndarray) -> np.ndarray:
        view = prop.claim_view()
        return kernels.squared_claim_deviations(
            view.values, state.column, _entry_std(state.aux, prop),
            view.object_idx, out=out,
        )

    def deviations(self, state: TruthState, prop) -> np.ndarray:
        return kernels.scatter_claims_to_matrix(
            prop.claim_view(), self.claim_deviations(state, prop)
        )


class NormalizedAbsoluteLoss(Loss):
    """Absolute deviation normalized by the entry std (Eq. 15);
    weighted-median truth update (Eq. 16)."""

    name = "absolute"
    kind = PropertyKind.CONTINUOUS
    uses_entry_std = True

    def initial_state(self, prop, init_column: np.ndarray) -> TruthState:
        state = TruthState(column=np.asarray(init_column, dtype=np.float64))
        _entry_std(state.aux, prop)
        return state

    def update_truth(self, prop, weights: np.ndarray) -> TruthState:
        return self.update_truth_fused(prop, weights)

    def update_truth_fused(self, prop, weights: np.ndarray, *,
                           claim_weights: np.ndarray | None = None,
                           effective: tuple[np.ndarray, np.ndarray]
                           | None = None) -> TruthState:
        view = prop.claim_view()
        if claim_weights is None:
            claim_weights = view.claim_weights(weights)
        state = TruthState(column=kernels.segment_weighted_median(
            view.values, claim_weights, view.indptr,
            group_of_claim=view.object_idx,
            plan=view.median_plan(), effective=effective,
        ))
        _entry_std(state.aux, prop)
        return state

    def claim_deviations(self, state: TruthState, prop) -> np.ndarray:
        view = prop.claim_view()
        return kernels.absolute_claim_deviations(
            view.values, state.column, _entry_std(state.aux, prop),
            view.object_idx,
        )

    def claim_deviations_into(self, state: TruthState, prop,
                              out: np.ndarray) -> np.ndarray:
        view = prop.claim_view()
        return kernels.absolute_claim_deviations(
            view.values, state.column, _entry_std(state.aux, prop),
            view.object_idx, out=out,
        )

    def deviations(self, state: TruthState, prop) -> np.ndarray:
        return kernels.scatter_claims_to_matrix(
            prop.claim_view(), self.claim_deviations(state, prop)
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_LOSSES: dict[str, type[Loss]] = {
    cls.name: cls
    for cls in (
        ZeroOneLoss,
        ProbabilityVectorLoss,
        NormalizedSquaredLoss,
        NormalizedAbsoluteLoss,
    )
}


def register_loss(cls: type[Loss]) -> type[Loss]:
    """Register a custom loss; usable as a class decorator."""
    if not getattr(cls, "name", None):
        raise ValueError("loss class must define a non-empty `name`")
    if cls.name in _LOSSES:
        raise ValueError(f"loss {cls.name!r} is already registered")
    _LOSSES[cls.name] = cls
    return cls


def loss_by_name(name: str) -> Loss:
    """Instantiate a registered loss by name."""
    try:
        return _LOSSES[name]()
    except KeyError:
        raise KeyError(
            f"unknown loss {name!r}; registered: {sorted(_LOSSES)}"
        ) from None


def available_losses(kind: PropertyKind | None = None) -> tuple[str, ...]:
    """Names of registered losses, optionally filtered by property kind."""
    names = (
        name for name, cls in _LOSSES.items()
        if kind is None or cls.kind is kind
    )
    return tuple(sorted(names))
