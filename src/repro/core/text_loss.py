"""Edit-distance loss for free-form text properties.

Section 2.4.2 of the paper points out that the CRH framework "can take
any loss function that is selected based on data types and distributions
... edit distance or KL divergence for text data".  This module realizes
the edit-distance instantiation:

* **deviation** — the Levenshtein distance between the claimed string and
  the current truth string, normalized by the longer string's length so
  the loss lives in [0, 1] regardless of string length (comparable across
  properties, per Section 2.5's normalization discussion);
* **truth update** — the exact minimizer of Eq. 3 restricted to *claimed*
  values: the **weighted medoid**, i.e. the claimed string minimizing the
  weight-summed edit distance to the entry's other claims.  (The
  unrestricted minimizer — the weighted Steiner string — is NP-hard; the
  medoid is the standard discrete relaxation and, like the weighted
  median, is always an actually-claimed value.)

Text values are stored as codec codes (like categorical values), so the
loss caches pairwise label distances per codec and never recomputes a
pair twice within a solve.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..data.encoding import MISSING_CODE
from ..data.schema import PropertyKind
from . import kernels
from .losses import Loss, TruthState, register_loss


def levenshtein(a: str, b: str) -> int:
    """Classic dynamic-programming edit distance (insert/delete/replace)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(
                previous[j] + 1,        # delete
                current[j - 1] + 1,     # insert
                previous[j - 1] + cost  # replace
            ))
        previous = current
    return previous[-1]


def normalized_edit_distance(a: str, b: str) -> float:
    """Levenshtein distance scaled into [0, 1] by the longer length."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein(a, b) / longest


@register_loss
class EditDistanceLoss(Loss):
    """Normalized edit distance with weighted-medoid truth update."""

    name = "edit_distance"
    kind = PropertyKind.TEXT

    def __init__(self) -> None:
        # Pairwise distances keyed by (code_a, code_b) with a <= b; valid
        # for the codec this loss instance is applied to (one property).
        self._codec = None

        @lru_cache(maxsize=262_144)
        def distance(code_a: int, code_b: int) -> float:
            label_a = self._codec.decode(code_a) or ""
            label_b = self._codec.decode(code_b) or ""
            return normalized_edit_distance(str(label_a), str(label_b))

        self._distance = distance

    def _pair_distance(self, code_a: int, code_b: int) -> float:
        if code_a == code_b:
            return 0.0
        low, high = (code_a, code_b) if code_a < code_b else (code_b, code_a)
        return self._distance(low, high)

    def _bind_codec(self, prop) -> None:
        if self._codec is None:
            self._codec = prop.codec
        elif self._codec is not prop.codec:
            raise ValueError(
                "an EditDistanceLoss instance is bound to one property's "
                "codec; build a fresh instance per property"
            )

    # ------------------------------------------------------------------
    def initial_state(self, prop, init_column: np.ndarray) -> TruthState:
        self._bind_codec(prop)
        return TruthState(column=np.asarray(init_column, dtype=np.int32))

    def update_truth(self, prop, weights: np.ndarray) -> TruthState:
        """Weighted medoid per entry over the entry's claimed strings."""
        self._bind_codec(prop)
        view = prop.claim_view()
        column = kernels.segment_weighted_medoid(
            view.values, view.claim_weights(weights), view.indptr,
            self._pair_distance,
        )
        return TruthState(column=column)

    def claim_deviations(self, state: TruthState, prop) -> np.ndarray:
        """Normalized edit distance of every claim to its entry's truth."""
        self._bind_codec(prop)
        view = prop.claim_view()
        truths = np.asarray(state.column)[view.object_idx]
        return np.array([
            np.nan if truth == MISSING_CODE
            else self._pair_distance(int(truth), int(code))
            for truth, code in zip(truths, view.values)
        ], dtype=np.float64)

    def deviations(self, state: TruthState, prop) -> np.ndarray:
        return kernels.scatter_claims_to_matrix(
            prop.claim_view(), self.claim_deviations(state, prop)
        )
