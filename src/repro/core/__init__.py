"""CRH optimization framework — the paper's primary contribution.

The public entry points are :func:`crh` (one call), :class:`CRHSolver` /
:class:`CRHConfig` (configurable), the loss registry in
:mod:`repro.core.losses`, the weight schemes in
:mod:`repro.core.regularizers`, and the source-selection helpers in
:mod:`repro.core.selection`.  The per-property math every engine shares
lives in :mod:`repro.core.kernels`.
"""

from . import kernels
from .initialization import (
    initialize_random,
    initialize_vote_mean,
    initialize_vote_median,
    initializer_by_name,
)
from .losses import (
    Loss,
    NormalizedAbsoluteLoss,
    NormalizedSquaredLoss,
    ProbabilityVectorLoss,
    TruthState,
    ZeroOneLoss,
    available_losses,
    loss_by_name,
    register_loss,
)
from .objective import (
    ConvergenceCriterion,
    DeviationOptions,
    objective_value,
    per_source_deviations,
)
from .regularizers import (
    ExponentialWeights,
    LpNormWeights,
    TopJSelectionWeights,
    WeightScheme,
    weight_scheme_by_name,
)
from .bregman import (
    BregmanGenerator,
    BregmanLoss,
    GeneralizedIDivergenceLoss,
    ItakuraSaitoLoss,
    SquaredEuclideanBregmanLoss,
    bregman_divergence,
)
from .finegrained import (
    FineGrainedConfig,
    FineGrainedCRHSolver,
    FineGrainedResult,
    fine_grained_crh,
)
from .result import TruthDiscoveryResult, check_result_alignment
from .robust_loss import HuberLoss, huber_value
from .selection import (
    SelectionResult,
    select_best_source,
    select_top_j_sources,
    select_under_budget,
)
from .solver import CRHConfig, CRHSolver, crh, states_to_truth_table
from .text_loss import (
    EditDistanceLoss,
    levenshtein,
    normalized_edit_distance,
)
from .weighted_stats import (
    column_std,
    weighted_mean,
    weighted_mean_columns,
    weighted_median,
    weighted_median_columns,
    weighted_median_select,
    weighted_mode,
    weighted_vote_columns,
)

__all__ = [
    "CRHConfig",
    "CRHSolver",
    "BregmanGenerator",
    "BregmanLoss",
    "ConvergenceCriterion",
    "DeviationOptions",
    "EditDistanceLoss",
    "ExponentialWeights",
    "FineGrainedCRHSolver",
    "FineGrainedConfig",
    "FineGrainedResult",
    "GeneralizedIDivergenceLoss",
    "HuberLoss",
    "ItakuraSaitoLoss",
    "SquaredEuclideanBregmanLoss",
    "Loss",
    "LpNormWeights",
    "NormalizedAbsoluteLoss",
    "NormalizedSquaredLoss",
    "ProbabilityVectorLoss",
    "SelectionResult",
    "TopJSelectionWeights",
    "TruthDiscoveryResult",
    "TruthState",
    "WeightScheme",
    "ZeroOneLoss",
    "available_losses",
    "bregman_divergence",
    "check_result_alignment",
    "column_std",
    "crh",
    "initialize_random",
    "initialize_vote_mean",
    "initialize_vote_median",
    "fine_grained_crh",
    "initializer_by_name",
    "kernels",
    "levenshtein",
    "normalized_edit_distance",
    "loss_by_name",
    "objective_value",
    "per_source_deviations",
    "register_loss",
    "select_best_source",
    "select_top_j_sources",
    "select_under_budget",
    "states_to_truth_table",
    "weight_scheme_by_name",
    "weighted_mean",
    "weighted_mean_columns",
    "weighted_median",
    "huber_value",
    "weighted_median_columns",
    "weighted_median_select",
    "weighted_mode",
    "weighted_vote_columns",
]
