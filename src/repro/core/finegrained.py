"""Fine-grained source weights (Section 2.5, "Source weight consistency").

CRH assumes a source is equally reliable on every property.  When that
assumption fails — a weather site nails temperatures but guesses
conditions — the paper proposes "dividing w_k into fine-grained weights,
each of which corresponds to a local reliability degree of the source on
a subset of properties or objects".

:class:`FineGrainedCRHSolver` implements the per-property-subset variant:
properties are partitioned into *groups*, each group gets its own weight
vector, and the block coordinate descent alternates a per-group weight
step (Eq. 5 restricted to the group's deviations) with the usual
per-entry truth step using the owning group's weights.  With a single
group this degrades exactly to plain CRH.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..data.schema import PropertyKind
from ..data.table import MultiSourceDataset
from .losses import Loss, TruthState, loss_by_name
from .objective import ConvergenceCriterion, DeviationOptions
from .regularizers import ExponentialWeights, WeightScheme
from .result import TruthDiscoveryResult
from .solver import CRHConfig, states_to_truth_table
from .initialization import initializer_by_name


@dataclass(frozen=True)
class FineGrainedConfig:
    """Configuration of the fine-grained solver.

    ``groups`` maps property names to group labels; properties sharing a
    label share a weight vector.  Unmapped properties fall into a group
    per data kind (one for categorical, one for continuous), which is the
    natural default when types differ in difficulty.  Set
    ``groups="per-property"`` to give every property its own weights.
    """

    groups: Mapping[str, str] | str | None = None
    categorical_loss: str = "zero_one"
    continuous_loss: str = "absolute"
    text_loss: str = "edit_distance"
    weight_scheme: WeightScheme = field(
        default_factory=lambda: ExponentialWeights(normalizer="max")
    )
    initializer: str = "vote_median"
    max_iterations: int = 100
    tol: float = 1e-6
    normalize_by_counts: bool = True

    def resolve_groups(self, dataset: MultiSourceDataset) -> dict[str, str]:
        """Group label per property name."""
        if self.groups == "per-property":
            return {p.name: p.name for p in dataset.schema}
        explicit = dict(self.groups or {})
        resolved: dict[str, str] = {}
        for prop in dataset.schema:
            if prop.name in explicit:
                resolved[prop.name] = str(explicit[prop.name])
            else:
                resolved[prop.name] = f"__{prop.kind.value}__"
        return resolved


@dataclass
class FineGrainedResult:
    """Truths plus one weight vector per property group."""

    result: TruthDiscoveryResult
    group_of_property: dict[str, str]
    group_weights: dict[str, np.ndarray]

    @property
    def truths(self):
        return self.result.truths

    def weights_for_property(self, name: str) -> np.ndarray:
        """The weight vector of ``name``'s group."""
        return self.group_weights[self.group_of_property[name]]


class FineGrainedCRHSolver:
    """Block coordinate descent with per-group source weights."""

    def __init__(self, config: FineGrainedConfig | None = None) -> None:
        self.config = config or FineGrainedConfig()

    def fit(self, dataset: MultiSourceDataset) -> FineGrainedResult:
        """Run the per-group block coordinate descent on ``dataset``."""
        started = time.perf_counter()
        config = self.config
        group_of_property = config.resolve_groups(dataset)
        group_names = sorted(set(group_of_property.values()))
        members: dict[str, list[int]] = {g: [] for g in group_names}
        for m, prop in enumerate(dataset.schema):
            members[group_of_property[prop.name]].append(m)

        losses: list[Loss] = []
        for prop in dataset.schema:
            if prop.kind is PropertyKind.CATEGORICAL:
                name = config.categorical_loss
            elif prop.kind is PropertyKind.TEXT:
                name = config.text_loss
            else:
                name = config.continuous_loss
            losses.append(loss_by_name(name))
        initializer = initializer_by_name(config.initializer)
        columns = initializer(dataset)
        states: list[TruthState] = [
            loss.initial_state(prop, column)
            for loss, prop, column in zip(losses, dataset.properties,
                                          columns)
        ]

        k = dataset.n_sources
        group_weights = {g: np.ones(k) for g in group_names}
        criterion = ConvergenceCriterion(tol=config.tol)
        history: list[float] = []
        converged = False
        iterations = 0

        for iterations in range(1, config.max_iterations + 1):
            # Weight step, per group (Eq. 5 on the group's properties).
            for group in group_names:
                totals = np.zeros(k)
                counts = np.zeros(k)
                for m in members[group]:
                    dev = losses[m].deviations(states[m],
                                               dataset.properties[m])
                    totals += np.nansum(dev, axis=1)
                    counts += (~np.isnan(dev)).sum(axis=1)
                if config.normalize_by_counts:
                    with np.errstate(invalid="ignore", divide="ignore"):
                        per_source = np.where(counts > 0,
                                              totals / counts, 0.0)
                else:
                    per_source = totals
                group_weights[group] = config.weight_scheme.weights(
                    per_source
                )
            # Truth step with each property's own group weights.
            states = [
                losses[m].update_truth(
                    dataset.properties[m],
                    group_weights[group_of_property[
                        dataset.schema[m].name]],
                )
                for m in range(len(dataset.schema))
            ]
            # Objective: sum of per-group weighted deviations.
            objective = 0.0
            for group in group_names:
                weights = group_weights[group]
                for m in members[group]:
                    objective += losses[m].objective_contribution(
                        states[m], dataset.properties[m], weights
                    )
            history.append(objective)
            if criterion.update(objective):
                converged = True
                break

        truths = states_to_truth_table(dataset, states)
        combined = np.mean(np.stack(list(group_weights.values())), axis=0)
        result = TruthDiscoveryResult(
            truths=truths,
            weights=combined,
            source_ids=dataset.source_ids,
            method="CRH-finegrained",
            iterations=iterations,
            converged=converged,
            objective_history=history,
            elapsed_seconds=time.perf_counter() - started,
        )
        return FineGrainedResult(
            result=result,
            group_of_property=group_of_property,
            group_weights=group_weights,
        )


def fine_grained_crh(dataset: MultiSourceDataset,
                     **config_overrides) -> FineGrainedResult:
    """One-call fine-grained CRH (see :class:`FineGrainedConfig`)."""
    config = FineGrainedConfig(**config_overrides)
    return FineGrainedCRHSolver(config).fit(dataset)
