"""Objective computation and per-source deviation aggregation (Eq. 1).

The solver needs two reductions every iteration:

* the ``(K,)`` per-source aggregate deviations feeding the weight step —
  optionally normalized by each source's observation count (Section 2.5,
  "Missing values") and by a per-property scale (Section 2.5,
  "Normalization");
* the scalar objective value ``f(X*, W)`` used by the convergence check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kernels import accumulate_source_deviations
from .losses import Loss, TruthState


@dataclass(frozen=True)
class DeviationOptions:
    """How per-source deviations are aggregated across entries/properties.

    Parameters
    ----------
    normalize_by_counts:
        Divide each source's total deviation by its number of observations,
        so sparse sources are not spuriously "reliable" (Section 2.5).
    property_scale:
        ``"none"`` — sum property deviations as-is (the continuous losses
        already divide by the per-entry std, which is the normalization the
        paper's experiments use); ``"mean"`` — additionally divide every
        property's deviation matrix by its mean observed deviation, forcing
        all properties into a comparable range (useful when custom losses
        with very different output scales are mixed).
    """

    normalize_by_counts: bool = True
    property_scale: str = "none"

    def __post_init__(self) -> None:
        if self.property_scale not in ("none", "mean"):
            raise ValueError(
                f"property_scale must be 'none' or 'mean', "
                f"got {self.property_scale!r}"
            )


def per_source_deviations(
    dataset,
    losses: list[Loss],
    states: list[TruthState],
    options: DeviationOptions = DeviationOptions(),
    claim_deviations=None,
    accumulate_out=None,
) -> np.ndarray:
    """Aggregate ``(K,)`` deviations of every source from the truths.

    ``dataset`` may be a dense
    :class:`~repro.data.table.MultiSourceDataset` or a sparse
    :class:`~repro.data.claims_matrix.ClaimsMatrix`: the reduction runs
    over each property's claim view either way.

    ``claim_deviations`` optionally overrides where the per-claim
    deviations come from: a callable ``(index, prop, loss, state) ->
    (n_claims,) array`` in canonical claim order.  The process backend
    points this at its worker-filled shared scratch so the reduction —
    and therefore the bit pattern of the result — is exactly the inline
    one, just with the element-wise deviation pass already done.

    ``accumulate_out`` optionally supplies a preallocated ``(totals,
    counts)`` float64 pair of length ``n_sources``, reused for every
    property's :func:`accumulate_source_deviations` call (each
    property's contribution is folded into the running sums before the
    next overwrites the pair).  The fused sweep
    (:class:`repro.core.sweep.SweepContext`) threads its scratch here;
    results are bit-identical either way.
    """
    k = dataset.n_sources
    totals = np.zeros(k, dtype=np.float64)
    counts = np.zeros(k, dtype=np.float64)
    for index, (prop, loss, state) in enumerate(
        zip(dataset.properties, losses, states)
    ):
        if claim_deviations is None:
            dev = loss.claim_deviations(state, prop)
        else:
            dev = claim_deviations(index, prop, loss, state)
        if options.property_scale == "mean":
            with np.errstate(invalid="ignore"):
                scale = np.nanmean(dev) if dev.size else np.nan
            if np.isfinite(scale) and scale > 0:
                dev = dev / scale
        prop_totals, prop_counts = accumulate_source_deviations(
            dev, prop.claim_view().source_idx, k, out=accumulate_out
        )
        totals += prop_totals
        counts += prop_counts
    if options.normalize_by_counts:
        with np.errstate(invalid="ignore", divide="ignore"):
            normalized = totals / counts
        return np.where(counts > 0, normalized, 0.0)
    return totals


def objective_value(
    dataset,
    losses: list[Loss],
    states: list[TruthState],
    weights: np.ndarray,
    options: DeviationOptions = DeviationOptions(),
) -> float:
    """The CRH objective ``f(X*, W)`` (Eq. 1) under the aggregation options.

    Computed as ``W . L`` where ``L`` is the per-source aggregate, so the
    objective the convergence check monitors is exactly the one the weight
    step minimized.
    """
    per_source = per_source_deviations(dataset, losses, states, options)
    return float(np.dot(np.asarray(weights, dtype=np.float64), per_source))


@dataclass
class ConvergenceCriterion:
    """Stop when the objective's relative decrease falls below ``tol``.

    The first several CRH iterations cause a large drop in the objective
    and the iterates stabilize quickly afterwards (Section 2.5), so a
    relative-change test is both faithful and cheap.  ``patience`` > 1
    requires the criterion to hold for that many consecutive iterations.
    """

    tol: float = 1e-6
    patience: int = 1

    def __post_init__(self) -> None:
        if self.tol < 0:
            raise ValueError("tol must be non-negative")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        self._streak = 0
        self._previous: float | None = None

    def reset(self) -> None:
        """Forget the previous objective (restart the criterion)."""
        self._streak = 0
        self._previous = None

    def update(self, objective: float) -> bool:
        """Feed the latest objective; returns True when converged."""
        previous = self._previous
        self._previous = objective
        if previous is None:
            return False
        denominator = max(abs(previous), 1e-300)
        change = abs(previous - objective) / denominator
        if change <= self.tol:
            self._streak += 1
        else:
            self._streak = 0
        return self._streak >= self.patience
