"""Compiled (numba) implementations of the hottest segment kernels.

This module holds the ``kernel_tier="numba"`` bodies of
:func:`~repro.core.kernels.segment_weighted_median`,
:func:`~repro.core.kernels.segment_weighted_vote`, and
:func:`~repro.core.kernels.accumulate_source_deviations` — the three
kernels the pinned bench suite shows dominating dense/sparse CRH runs.
They are kept **bit-identical** to the NumPy implementations by
construction:

* Per-source and per-cell accumulations run sequentially in claim
  order, which is exactly the accumulation order of ``np.bincount`` and
  the unbuffered ``np.add.at`` (both apply one element at a time in
  input order).
* The weighted-median prefix masses replicate NumPy's
  ``np.add.reduceat`` result exactly: a segment sum over ``[i, j)`` is
  ``a[i] + pairwise_sum(a[i+1:j])`` where ``pairwise_sum`` is NumPy's
  classic pairwise algorithm (sequential below 8 elements, an
  eight-accumulator unrolled loop up to 128, and a recursive split
  ``n2 = n // 2; n2 -= n2 % 8`` above).  The per-group binary search
  then replays the NumPy kernel's exact probe sequence
  (``lo = 0, hi = size - 1, mid = (lo + hi) >> 1``), so every float
  comparison sees the same bits.

The module imports cleanly without numba installed: ``njit`` degrades
to a no-op decorator and ``prange`` to ``range``, leaving plain-Python
bodies that the test suite compares against the NumPy kernels even on
numba-free machines.  :data:`NUMBA_AVAILABLE` tells the dispatch layer
(:mod:`repro.core.dispatch`) whether the compiled tier may be
activated; :data:`NUMBA_UNAVAILABLE_REASON` is the traced
``kernel_tier_reason`` when it may not.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
    NUMBA_UNAVAILABLE_REASON: str | None = None
except Exception as _import_error:  # numba absent or broken
    NUMBA_AVAILABLE = False
    NUMBA_UNAVAILABLE_REASON = (
        f"numba is not importable ({_import_error!r})"
    )

    def njit(*args, **kwargs):
        """No-op stand-in for ``numba.njit`` when numba is absent.

        Keeps the kernel bodies importable and testable as plain Python
        (the dispatch layer never activates the tier in that case).
        """
        if args and callable(args[0]):
            return args[0]

        def decorate(fn):
            return fn

        return decorate

    prange = range


@njit(cache=True)
def _pairwise_sum(a, lo, n):
    """NumPy's pairwise summation over ``a[lo:lo + n]``, bit for bit.

    Mirrors ``pairwise_sum_DOUBLE`` in NumPy's ufunc inner loops:
    sequential accumulation below 8 elements, the eight-accumulator
    unrolled block up to 128, and the ``n2 = n // 2; n2 -= n2 % 8``
    recursive split above — the same additions in the same order, so
    the float result matches ``np.add.reduce`` exactly.
    """
    if n < 8:
        res = 0.0
        for i in range(n):
            res += a[lo + i]
        return res
    if n <= 128:
        r0 = a[lo]
        r1 = a[lo + 1]
        r2 = a[lo + 2]
        r3 = a[lo + 3]
        r4 = a[lo + 4]
        r5 = a[lo + 5]
        r6 = a[lo + 6]
        r7 = a[lo + 7]
        i = 8
        limit = n - (n % 8)
        while i < limit:
            r0 += a[lo + i]
            r1 += a[lo + i + 1]
            r2 += a[lo + i + 2]
            r3 += a[lo + i + 3]
            r4 += a[lo + i + 4]
            r5 += a[lo + i + 5]
            r6 += a[lo + i + 6]
            r7 += a[lo + i + 7]
            i += 8
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            res += a[lo + i]
            i += 1
        return res
    n2 = n // 2
    n2 -= n2 % 8
    return _pairwise_sum(a, lo, n2) + _pairwise_sum(a, lo + n2, n - n2)


@njit(cache=True)
def _segment_sum_model(a, start, stop):
    """``np.add.reduceat``'s segment sum over ``a[start:stop]``, exactly.

    ``reduceat`` seeds the reduction with the first element and
    pairwise-sums the rest, so a one-element segment returns ``a[start]``
    itself (no ``+ 0.0`` that could flip a signed zero).
    """
    n = stop - start
    if n <= 0:
        return 0.0
    if n == 1:
        return a[start]
    return a[start] + _pairwise_sum(a, start + 1, n - 1)


@njit(parallel=True, cache=True)
def median_core(sorted_values, sorted_weights, starts, sizes,
                threshold, out):
    """Per-group half-mass binary search of the weighted median.

    Consumes the kernel's precomputed sort plan (values and weights
    already in ``(group, value)`` order) and replays the NumPy kernel's
    probe sequence per group; groups are independent, so the ``prange``
    parallelization cannot change any result.  Writes ``NaN`` for empty
    groups into ``out``.
    """
    n_groups = sizes.shape[0]
    for g in prange(n_groups):
        size = sizes[g]
        if size == 0:
            out[g] = np.nan
            continue
        start = starts[g]
        t = threshold[g]
        lo = 0
        hi = size - 1
        while lo < hi:
            mid = (lo + hi) >> 1
            mass = _segment_sum_model(sorted_weights, start,
                                      start + mid + 1)
            if mass >= t:
                hi = mid
            else:
                lo = mid + 1
        out[g] = sorted_values[start + lo]


@njit(parallel=True, cache=True)
def vote_core(codes, weights, indptr, n_categories, missing_code, out):
    """Weighted vote per group: claim-order accumulation + first-max scan.

    Accumulates each group's category scores sequentially in claim
    order (the accumulation order of the NumPy kernel's ``np.add.at``)
    and picks the first strictly-greater category — ``argmax``'s
    tie-to-smallest-code semantics.  ``weights`` are the effective
    (zero-total-fallback-applied) claim weights the NumPy wrapper
    computed; they are non-negative, so an unclaimed category's 0.0
    score can never beat a claimed group's positive maximum.
    """
    n_groups = indptr.shape[0] - 1
    for g in prange(n_groups):
        lo = indptr[g]
        hi = indptr[g + 1]
        if lo == hi:
            out[g] = missing_code
            continue
        scores = np.zeros(n_categories, dtype=np.float64)
        for i in range(lo, hi):
            scores[codes[i]] += weights[i]
        best = 0
        best_score = scores[0]
        for c in range(1, n_categories):
            if scores[c] > best_score:
                best_score = scores[c]
                best = c
        out[g] = best


@njit(cache=True)
def accumulate_core(claim_deviations, source_idx, totals, counts):
    """Per-source deviation sums/counts, sequentially in claim order.

    Skips non-finite deviations exactly like the NumPy kernel's finite
    mask, and accumulates in claim order — ``np.bincount``'s order — so
    the per-source floats match bit for bit.  Deliberately sequential
    (no ``prange``): parallel accumulation would reorder the float
    additions and break bit-identity.
    """
    for i in range(claim_deviations.shape[0]):
        d = claim_deviations[i]
        if np.isfinite(d):
            s = source_idx[i]
            totals[s] += d
            counts[s] += 1.0
