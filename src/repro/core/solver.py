"""The CRH solver: block coordinate descent on Eq. 1 (Algorithm 1).

Usage::

    from repro.core import CRHSolver, CRHConfig

    result = CRHSolver().fit(dataset)
    result.truths          # estimated truth table
    result.weights         # estimated source reliability degrees

The default configuration is the one the paper evaluates (Section 3.1.2):
0-1 loss + weighted voting on categorical properties, normalized absolute
deviation + weighted median on continuous properties, and exponential
weights with the max normalizer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..data.schema import PropertyKind
from ..data.table import TruthTable
from ..engine import BACKEND_NAMES, BackendExecutionError, make_backend
from ..observability import iteration_record, run_finished, run_started
from ..observability.metrics import (
    MetricsRegistry,
    activate_metrics,
    active_registry,
)
from ..observability.profiling import Profiler, activate, span
from ..observability.tracer import Tracer
from . import dispatch
from .initialization import initializer_by_name
from .losses import Loss, TruthState, loss_by_name
from .objective import ConvergenceCriterion, DeviationOptions
from .sweep import SweepContext
from .regularizers import ExponentialWeights, WeightScheme
from .result import TruthDiscoveryResult


@dataclass(frozen=True)
class CRHConfig:
    """Configuration of the CRH solver.

    Parameters
    ----------
    categorical_loss / continuous_loss:
        Registered loss names applied to properties of each kind
        (see :func:`repro.core.losses.available_losses`).
    weight_scheme:
        The weight-step solver (Section 2.3).  Defaults to the paper's
        max-normalized exponential scheme.
    initializer:
        Truth initialization strategy (``"vote_median"``, ``"vote_mean"``
        or ``"random"``); Section 2.5 recommends Voting/Averaging.
    max_iterations / tol / patience:
        Convergence control: stop after ``max_iterations`` or when the
        objective's relative decrease stays below ``tol`` for ``patience``
        consecutive iterations.
    normalize_by_counts / property_scale:
        Deviation aggregation options (see
        :class:`repro.core.objective.DeviationOptions`).
    backend:
        Execution backend: ``"dense"`` ((K, N) matrices), ``"sparse"``
        (CSR claims), ``"process"`` (sparse claims sharded across worker
        processes over shared memory), ``"mmap"`` (out-of-core chunked
        execution over memory-mapped claims), or ``"auto"`` (footprint
        recommendation, escalated to mmap above the memory cap; see
        :func:`repro.engine.make_backend`).  All backends produce
        bit-identical results — this is a memory/layout/parallelism
        choice.
    n_workers:
        Worker count for the process backend (``None`` — the session
        default from :func:`repro.engine.set_default_workers`, else the
        usable CPU count).  Ignored by the other backends.
    chunk_claims:
        Claims per chunk for the mmap backend (``None`` —
        :data:`repro.data.chunks.DEFAULT_CHUNK_CLAIMS`).  Ignored by
        the other backends.
    kernel_tier:
        Segment-kernel implementation tier: ``"numpy"`` (the reference
        implementations), ``"numba"`` (compiled hot kernels where numba
        is importable and self-checked, NumPy fallback otherwise), or
        ``"auto"`` (the session default from
        :func:`repro.core.dispatch.set_kernel_tier`, else numba when
        available).  All tiers produce bit-identical results — this is
        purely a speed choice; the resolved tier and the reason for it
        are stamped into ``run_start`` traces as ``kernel_tier`` /
        ``kernel_tier_reason``.
    seed:
        Used only by the random initializer.
    """

    categorical_loss: str = "zero_one"
    continuous_loss: str = "absolute"
    text_loss: str = "edit_distance"
    weight_scheme: WeightScheme = field(
        default_factory=lambda: ExponentialWeights(normalizer="max")
    )
    initializer: str = "vote_median"
    max_iterations: int = 100
    tol: float = 1e-6
    patience: int = 1
    normalize_by_counts: bool = True
    property_scale: str = "none"
    backend: str = "auto"
    n_workers: int | None = None
    chunk_claims: int | None = None
    kernel_tier: str = "auto"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, "
                f"got {self.backend!r}"
            )
        if self.kernel_tier not in dispatch.KERNEL_TIER_NAMES:
            raise ValueError(
                f"kernel_tier must be one of {dispatch.KERNEL_TIER_NAMES}, "
                f"got {self.kernel_tier!r}"
            )
        if self.n_workers is not None and self.n_workers < 1:
            raise ValueError("n_workers must be >= 1 when given")
        if self.chunk_claims is not None and self.chunk_claims < 1:
            raise ValueError("chunk_claims must be >= 1 when given")

    def with_(self, **changes) -> "CRHConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)

    def deviation_options(self) -> DeviationOptions:
        """The aggregation options as a DeviationOptions value."""
        return DeviationOptions(
            normalize_by_counts=self.normalize_by_counts,
            property_scale=self.property_scale,
        )


class CRHSolver:
    """Iterative weight/truth solver for the CRH framework (Algorithm 1)."""

    def __init__(self, config: CRHConfig | None = None) -> None:
        self.config = config or CRHConfig()

    # ------------------------------------------------------------------
    def _losses_for(self, dataset) -> list[Loss]:
        """One loss instance per property, selected by property kind."""
        losses: list[Loss] = []
        for prop in dataset.schema:
            if prop.kind is PropertyKind.CATEGORICAL:
                losses.append(loss_by_name(self.config.categorical_loss))
            elif prop.kind is PropertyKind.TEXT:
                losses.append(loss_by_name(self.config.text_loss))
            else:
                losses.append(loss_by_name(self.config.continuous_loss))
            if losses[-1].kind is not prop.kind:
                raise ValueError(
                    f"loss {losses[-1].name!r} targets {losses[-1].kind} "
                    f"but property {prop.name!r} is {prop.kind}"
                )
        return losses

    def _initial_states(self, dataset, losses: list[Loss],
                        backend=None) -> list[TruthState]:
        initializer = initializer_by_name(self.config.initializer)
        rng = (np.random.default_rng(self.config.seed)
               if self.config.initializer == "random" else None)
        # Backends that stream their claims (mmap) expose an
        # ``initial_columns`` hook that runs the initializer chunk-wise
        # — bit-identical to the full-array pass, without materializing
        # every claim column at once.
        hook = getattr(backend, "initial_columns", None)
        if hook is not None:
            columns = hook(initializer, rng=rng)
        elif rng is not None:
            columns = initializer(dataset, rng=rng)
        else:
            columns = initializer(dataset)
        return [
            loss.initial_state(prop, column)
            for loss, prop, column in zip(losses, dataset.properties, columns)
        ]

    # ------------------------------------------------------------------
    def fit(self, dataset, tracer: Tracer | None = None,
            profiler: Profiler | None = None,
            metrics: MetricsRegistry | None = None
            ) -> TruthDiscoveryResult:
        """Run Algorithm 1 on ``dataset`` and return truths + weights.

        ``dataset`` may be a dense
        :class:`~repro.data.table.MultiSourceDataset` or a sparse
        :class:`~repro.data.claims_matrix.ClaimsMatrix`; the config's
        ``backend`` decides the execution representation (``"auto"``
        resolves through :func:`repro.engine.make_backend`'s footprint
        recommendation).

        Pass a :class:`~repro.observability.Tracer` to receive one
        ``iteration`` record per loop pass (objective, weights, weight
        delta, truth-change count, per-step wall time) bracketed by
        ``run_start``/``run_end`` records.  Pass a
        :class:`~repro.observability.MemoryProfiler` to additionally
        collect the phase/kernel wall-time breakdown (``setup``,
        ``weight_step``, ``truth_step``, ``objective`` spans plus every
        :mod:`repro.core.kernels` counter); when both are given the
        profiler's aggregate is flushed into the trace as ``profile``
        records just before ``run_end``.  With neither (the default) no
        record is ever constructed, so the uninstrumented hot path is
        unchanged and results are bit-identical.

        Pass a :class:`~repro.observability.MetricsRegistry` (or
        activate one via
        :func:`~repro.observability.activate_metrics`, which ``fit``
        falls back to) to collect live metrics: an
        ``iteration_seconds`` histogram labeled with the executing
        backend, a ``degradation_events`` counter labeled with the
        backend that failed, and — for the process backend — per-worker
        ``worker_tasks`` / ``worker_busy_seconds`` series merged from
        the workers' partial registries.

        With ``backend="process"`` the truth and deviation passes run on
        a shared-memory worker pool; with ``backend="mmap"`` they run
        chunk-at-a-time over memory-mapped claims.  Any runner failure
        (a dead worker, an unreadable chunk, a loss without a chunked /
        worker implementation) degrades the run to inline sparse
        execution, recording the reason as ``backend_reason`` — in
        ``run_start`` when degradation happens at setup, in ``run_end``
        when the runner fails mid-run.  A backend the solver created
        itself is torn down in all cases (errors and KeyboardInterrupt
        included); a caller-built :class:`~repro.engine.ProcessBackend`
        keeps its pool warm for the next run.
        """
        started = time.perf_counter()
        config = self.config
        prof = (profiler if profiler is not None and profiler.enabled
                else None)
        registry = metrics if metrics is not None else active_registry()
        reg = (registry if registry is not None and registry.enabled
               else None)
        source = dataset
        backend = None
        owns_backend = False
        runner = None
        degraded_reason: str | None = None
        tier, tier_reason = dispatch.resolve_kernel_tier(config.kernel_tier)
        try:
            with activate(prof), activate_metrics(reg), \
                    dispatch.activate_tier(tier):
                with span(prof, "setup"):
                    backend = make_backend(source, config.backend,
                                           n_workers=config.n_workers,
                                           chunk_claims=config.chunk_claims)
                    owns_backend = backend is not source
                    dataset = backend.data
                    options = config.deviation_options()
                    losses = self._losses_for(dataset)
                    states = self._initial_states(dataset, losses,
                                                  backend=backend)
                    if getattr(backend, "supports_runner", False):
                        try:
                            runner = backend.start_runner(
                                losses, profiler=prof, kernel_tier=tier)
                            runner.seed(states)
                        except BackendExecutionError as error:
                            degraded_reason = (
                                f"{backend.name} backend degraded to "
                                f"inline sparse execution: {error}"
                            )
                            if reg is not None:
                                reg.counter("degradation_events",
                                            backend=backend.name).inc()
                            runner = None

                def degrade(error: BackendExecutionError) -> None:
                    nonlocal runner, degraded_reason
                    if backend.name == "process":
                        degraded_reason = (
                            "process worker failed mid-run; finishing "
                            f"inline on sparse claims: {error}"
                        )
                    else:
                        degraded_reason = (
                            f"{backend.name} backend failed mid-run; "
                            f"finishing inline on sparse claims: {error}"
                        )
                    if reg is not None:
                        reg.counter("degradation_events",
                                    backend=backend.name).inc()
                    runner = None
                    backend.close()

                # The fused sweep context (shared per-view state +
                # iteration scratch) backs every inline pass; built
                # lazily so runner-served runs that never degrade don't
                # allocate its buffers.
                sweep: SweepContext | None = None

                def ensure_sweep() -> SweepContext:
                    nonlocal sweep
                    if sweep is None:
                        sweep = SweepContext(dataset, losses, options)
                    return sweep

                def aggregate_deviations(current) -> np.ndarray:
                    if runner is not None:
                        try:
                            return runner.per_source(current, options)
                        except BackendExecutionError as error:
                            degrade(error)
                    return ensure_sweep().per_source(current)

                def truth_step(weights) -> list[TruthState]:
                    if runner is not None:
                        try:
                            return runner.truth_step(weights)
                        except BackendExecutionError as error:
                            degrade(error)
                    return ensure_sweep().truth_step(weights)

                criterion = ConvergenceCriterion(tol=config.tol,
                                                 patience=config.patience)
                weights = np.ones(dataset.n_sources, dtype=np.float64)
                history: list[float] = []
                converged = False
                iterations = 0
                tracing = tracer is not None and tracer.enabled
                backend_name = backend.name
                backend_reason = backend.resolution
                if degraded_reason is not None:
                    # Setup-time degradation: the run executes inline on
                    # the sparse claim storage from the start.
                    backend_name = "sparse"
                    backend_reason = degraded_reason
                iteration_hist = (
                    reg.histogram("iteration_seconds",
                                  backend=backend_name)
                    if reg is not None else None
                )
                if tracing:
                    tracer.emit(run_started(
                        "CRH",
                        n_sources=dataset.n_sources,
                        n_objects=dataset.n_objects,
                        n_properties=len(dataset.schema),
                        backend=backend_name,
                        backend_reason=backend_reason,
                        n_claims=backend.n_claims(),
                        n_workers=getattr(runner, "n_workers", None),
                        n_chunks=getattr(runner, "n_chunks", None),
                        kernel_tier=tier,
                        kernel_tier_reason=tier_reason,
                    ))

                # The aggregate of iteration i's objective is exactly the
                # deviation vector iteration i+1's weight step needs
                # (same states, same reduction), so it is computed once
                # and carried over.
                aggregated: np.ndarray | None = None
                for iterations in range(1, config.max_iterations + 1):
                    iter_started = (time.perf_counter()
                                    if iteration_hist is not None else 0.0)
                    step_started = time.perf_counter() if tracing else 0.0
                    # Step I (Eq. 2): weights from deviations under
                    # current truths.
                    with span(prof, "weight_step"):
                        if aggregated is None:
                            aggregated = aggregate_deviations(states)
                        previous_weights = weights
                        weights = config.weight_scheme.weights(aggregated)
                    if tracing:
                        weight_seconds = time.perf_counter() - step_started
                        previous_states = states
                        step_started = time.perf_counter()
                    # Step II (Eq. 3): per-entry truth update under fixed
                    # weights.
                    with span(prof, "truth_step"):
                        states = truth_step(weights)
                    with span(prof, "objective"):
                        aggregated = aggregate_deviations(states)
                        objective = float(np.dot(weights, aggregated))
                    history.append(objective)
                    if tracing:
                        tracer.emit(iteration_record(
                            iterations,
                            objective=objective,
                            weights=weights,
                            weight_delta=float(
                                np.abs(weights - previous_weights).max()
                            ),
                            truth_changes=_truth_change_count(
                                previous_states, states),
                            truth_seconds=(time.perf_counter()
                                           - step_started),
                            weight_seconds=weight_seconds,
                        ))
                    if iteration_hist is not None:
                        iteration_hist.observe(
                            time.perf_counter() - iter_started)
                    if criterion.update(objective):
                        converged = True
                        break
                with span(prof, "finalize"):
                    truths = states_to_truth_table(dataset, states)

            if tracing:
                if prof is not None:
                    prof.flush_to(tracer)
                extras: dict = {}
                if runner is not None:
                    efficiency = runner.parallel_efficiency()
                    if efficiency is not None:
                        extras["parallel_efficiency"] = float(efficiency)
                elif (degraded_reason is not None
                        and backend_name != "sparse"):
                    # Mid-run degradation: run_start advertised the
                    # process/mmap backend, so the correction lands here.
                    extras["backend"] = "sparse"
                    extras["backend_reason"] = degraded_reason
                tracer.emit(run_finished(
                    iterations=iterations,
                    converged=converged,
                    elapsed_seconds=time.perf_counter() - started,
                    **extras,
                ))
            if degraded_reason is not None:
                # Covers mid-run degradation too: the run may have
                # started on process/mmap but finished inline.
                backend_name = "sparse"
                backend_reason = degraded_reason
            return TruthDiscoveryResult(
                truths=truths,
                weights=weights,
                source_ids=dataset.source_ids,
                method="CRH",
                iterations=iterations,
                converged=converged,
                objective_history=history,
                elapsed_seconds=time.perf_counter() - started,
                backend=backend_name,
                backend_reason=backend_reason,
            )
        finally:
            if backend is not None and owns_backend:
                closer = getattr(backend, "close", None)
                if closer is not None:
                    closer()


def _truth_change_count(old_states: list[TruthState],
                        new_states: list[TruthState]) -> int:
    """Entries whose truth moved between two truth steps (NaN-stable)."""
    changed = 0
    for old, new in zip(old_states, new_states):
        a = np.asarray(old.column)
        b = np.asarray(new.column)
        differs = a != b
        if a.dtype.kind == "f":
            differs &= ~(np.isnan(a) & np.isnan(b))
        changed += int(np.count_nonzero(differs))
    return changed


def states_to_truth_table(dataset,
                          states: list[TruthState]) -> TruthTable:
    """Materialize per-property solver states into a :class:`TruthTable`.

    Works on dense datasets and sparse claims matrices alike (both carry
    schema, object ids and codecs).
    """
    columns = []
    for prop, state in zip(dataset.properties, states):
        if prop.schema.uses_codec:
            columns.append(np.asarray(state.column, dtype=np.int32))
        else:
            columns.append(np.asarray(state.column, dtype=np.float64))
    return TruthTable(
        schema=dataset.schema,
        object_ids=dataset.object_ids,
        columns=columns,
        codecs=dataset.codecs(),
    )


def crh(dataset, tracer: Tracer | None = None,
        profiler: Profiler | None = None,
        metrics: MetricsRegistry | None = None,
        **config_overrides) -> TruthDiscoveryResult:
    """One-call CRH with optional config overrides and instrumentation.

    >>> result = crh(dataset, continuous_loss="squared", max_iterations=20)
    >>> result = crh(dataset, backend="sparse")       # CSR execution
    >>> result = crh(dataset, tracer=MemoryTracer())  # traced run
    >>> result = crh(dataset, profiler=MemoryProfiler())  # profiled run
    >>> result = crh(dataset, metrics=MetricsRegistry())  # live metrics
    """
    config = CRHConfig(**config_overrides) if config_overrides else CRHConfig()
    return CRHSolver(config).fit(dataset, tracer=tracer, profiler=profiler,
                                 metrics=metrics)
