"""repro — a reproduction of the CRH truth-discovery framework.

CRH ("Conflict Resolution on Heterogeneous data") resolves conflicts among
multiple sources of mixed categorical/continuous data by jointly estimating
entry truths and source reliability weights (Li et al., SIGMOD 2014;
journal version TKDE 2016).

Quickstart::

    from repro import crh
    from repro.datasets import generate_weather_dataset

    dataset, truth = generate_weather_dataset(seed=7)
    result = crh(dataset)
    print(result.weights)          # estimated source reliability
    print(result.truths.value(dataset.object_ids[0], "high_temp"))
"""

from .core import CRHConfig, CRHSolver, TruthDiscoveryResult, crh
from .engine import make_backend, set_default_backend, use_default_backend

__version__ = "1.0.0"

__all__ = [
    "CRHConfig",
    "CRHSolver",
    "TruthDiscoveryResult",
    "crh",
    "make_backend",
    "set_default_backend",
    "use_default_backend",
    "__version__",
]
