"""Multi-source dataset simulation from a ground-truth table.

This is the engine behind Tables 3-4 and Figs. 2-3: take a truth table
(e.g. the UCI-shaped generators in :mod:`repro.datasets.uci`), assign
every simulated source a reliability ``gamma``, and corrupt the truths
with the :class:`~repro.datasets.noise.NoiseModel` to produce conflicting
multi-source observations.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from ..data.encoding import MISSING_CODE
from ..data.table import (
    MultiSourceDataset,
    PropertyObservations,
    TruthTable,
)
from .noise import NoiseModel

#: The 8 source reliability levels used throughout Section 3.2.2.
PAPER_GAMMAS: tuple[float, ...] = (0.1, 0.4, 0.7, 1.0, 1.3, 1.6, 1.9, 2.0)


def simulate_sources(
    truth: TruthTable,
    gammas: Sequence[float],
    rng: np.random.Generator,
    noise_model: NoiseModel | None = None,
    rounding: Mapping[str, int] | None = None,
    missing_rate: float = 0.0,
    source_ids: Sequence[Hashable] | None = None,
) -> MultiSourceDataset:
    """Corrupt a truth table into a multi-source observation dataset.

    Parameters
    ----------
    truth:
        Fully (or partially) labeled ground-truth table; unlabeled entries
        produce no observations.
    gammas:
        One reliability parameter per simulated source (lower = more
        reliable); :data:`PAPER_GAMMAS` reproduces the paper's setting.
    rng:
        Explicit generator; the simulation is fully deterministic given it.
    noise_model:
        The gamma-to-noise mapping; default :class:`NoiseModel`.
    rounding:
        Optional per-property decimal places applied to continuous
        observations (the paper's "physical meaning" rounding).
    missing_rate:
        Probability that any (source, entry) observation is dropped,
        exercising the missing-value handling of Section 2.5.
    source_ids:
        Optional explicit source identifiers; default ``source_0..k``.

    Returns
    -------
    A dataset with ``len(gammas)`` sources over the truth table's objects
    and schema, sharing the truth table's categorical codecs.
    """
    if noise_model is None:
        noise_model = NoiseModel()
    gammas = list(gammas)
    if not gammas:
        raise ValueError("need at least one source gamma")
    if not 0.0 <= missing_rate < 1.0:
        raise ValueError("missing_rate must be in [0, 1)")
    if source_ids is None:
        source_ids = [f"source_{k}" for k in range(len(gammas))]
    elif len(source_ids) != len(gammas):
        raise ValueError(
            f"{len(source_ids)} source ids for {len(gammas)} gammas"
        )
    rounding = dict(rounding or {})

    k = len(gammas)
    n = truth.n_objects
    properties: list[PropertyObservations] = []
    for m, prop in enumerate(truth.schema):
        if prop.is_categorical:
            codec = truth.codecs[prop.name]
            truth_col = truth.columns[m]
            matrix = np.empty((k, n), dtype=np.int32)
            for row, gamma in enumerate(gammas):
                matrix[row] = noise_model.perturb_categorical(
                    truth_col, len(codec), gamma, rng
                )
            if missing_rate > 0:
                drop = rng.random((k, n)) < missing_rate
                matrix[drop] = MISSING_CODE
            properties.append(
                PropertyObservations(schema=prop, values=matrix, codec=codec)
            )
        else:
            truth_col = truth.columns[m].astype(np.float64)
            matrix = np.empty((k, n), dtype=np.float64)
            decimals = rounding.get(prop.name)
            for row, gamma in enumerate(gammas):
                matrix[row] = noise_model.perturb_continuous(
                    truth_col, gamma, rng, decimals=decimals
                )
            if missing_rate > 0:
                drop = rng.random((k, n)) < missing_rate
                matrix[drop] = np.nan
            properties.append(
                PropertyObservations(schema=prop, values=matrix, codec=None)
            )

    return MultiSourceDataset(
        schema=truth.schema,
        source_ids=source_ids,
        object_ids=truth.object_ids,
        properties=properties,
    )


def reliable_unreliable_mix(
    n_reliable: int,
    n_sources: int = 8,
    reliable_gamma: float = 0.1,
    unreliable_gamma: float = 2.0,
) -> list[float]:
    """Gamma assignment for the Figs. 2-3 sweep.

    The paper fixes 8 sources and varies how many are reliable
    (gamma = 0.1) versus unreliable (gamma = 2), from 0 to all 8.
    """
    if not 0 <= n_reliable <= n_sources:
        raise ValueError(
            f"n_reliable must be in [0, {n_sources}], got {n_reliable}"
        )
    return ([reliable_gamma] * n_reliable
            + [unreliable_gamma] * (n_sources - n_reliable))
