"""Noise models for simulating unreliable sources (Section 3.2.2).

The paper builds simulated multi-source data by perturbing a ground-truth
table: Gaussian noise on continuous properties (rounded afterwards "based
on their physical meaning") and random value flips on categorical
properties, both governed by a per-source reliability parameter ``gamma``
("a lower gamma indicates a lower chance that the ground truths are
altered").  For continuous data gamma is proportional to the noise
variance; for categorical data a flip threshold ``theta(gamma)`` is set
from it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Maps the paper's ``gamma`` knob to concrete perturbation parameters.

    Parameters
    ----------
    continuous_scale:
        The Gaussian noise applied to a continuous property has standard
        deviation ``gamma * continuous_scale * property_std`` (the paper:
        "gamma is proportional to the variance of the Gaussian noise").
    flip_deadzone / flip_slope / theta_max:
        Flip threshold ``theta = clip(flip_slope * (gamma - flip_deadzone),
        0, theta_max)``: the probability that a categorical observation is
        replaced by a uniformly random *other* value.  The dead zone gives
        genuinely reliable sources (``gamma <= flip_deadzone``) a zero
        flip rate, which is what lets CRH *fully recover* the categorical
        truths in Table 4 and discover the truths from a single reliable
        source in Figs. 2-3 — both headline observations of Section
        3.2.2.  ``theta_max`` < 1 keeps even the worst source marginally
        informative.
    """

    continuous_scale: float = 0.3
    flip_deadzone: float = 0.5
    flip_slope: float = 0.5
    theta_max: float = 0.95

    def __post_init__(self) -> None:
        if self.continuous_scale <= 0:
            raise ValueError("continuous_scale must be positive")
        if self.flip_deadzone < 0:
            raise ValueError("flip_deadzone must be non-negative")
        if self.flip_slope < 0:
            raise ValueError("flip_slope must be non-negative")
        if not 0 < self.theta_max <= 1:
            raise ValueError("theta_max must be in (0, 1]")

    def flip_threshold(self, gamma: float) -> float:
        """Categorical flip probability ``theta`` for reliability ``gamma``."""
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        return float(
            np.clip(self.flip_slope * (gamma - self.flip_deadzone),
                    0.0, self.theta_max)
        )

    def noise_std(self, gamma: float, property_std: float) -> float:
        """Gaussian noise std for a continuous property with given spread."""
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        return gamma * self.continuous_scale * property_std

    # ------------------------------------------------------------------
    # vectorized perturbation primitives
    # ------------------------------------------------------------------
    def perturb_continuous(
        self,
        truth_values: np.ndarray,
        gamma: float,
        rng: np.random.Generator,
        decimals: int | None = None,
    ) -> np.ndarray:
        """Noisy copy of a continuous truth column for one source.

        ``decimals`` rounds the observations to mimic the paper's
        "round the continuous type data based on their physical meaning"
        (e.g. temperatures to integers, prices to cents); ``None`` skips
        rounding.  NaN truths (unlabeled) stay NaN.
        """
        truth_values = np.asarray(truth_values, dtype=np.float64)
        labeled = ~np.isnan(truth_values)
        spread = float(np.std(truth_values[labeled])) if labeled.any() else 0.0
        if spread <= 0:
            spread = 1.0
        noisy = truth_values + rng.normal(
            0.0, self.noise_std(gamma, spread), size=truth_values.shape
        )
        if decimals is not None:
            noisy = np.round(noisy, decimals)
        return np.where(labeled, noisy, np.nan)

    def perturb_categorical(
        self,
        truth_codes: np.ndarray,
        n_categories: int,
        gamma: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Flipped copy of a categorical truth column for one source.

        Implements the paper's scheme exactly: draw ``x ~ Uniform(0, 1)``
        per entry; where ``x < theta`` replace the value with one of the
        *other* possible values chosen uniformly.  Missing truths (-1)
        stay missing.
        """
        truth_codes = np.asarray(truth_codes)
        if n_categories < 2:
            # Nothing to flip to; the source can only repeat the truth.
            return truth_codes.astype(np.int32, copy=True)
        labeled = truth_codes >= 0
        theta = self.flip_threshold(gamma)
        flip = (rng.random(truth_codes.shape) < theta) & labeled
        # Uniform over the other L-1 categories: draw an offset in
        # [1, L-1] and rotate, so the original value is never redrawn.
        offsets = rng.integers(1, n_categories, size=truth_codes.shape)
        flipped = (truth_codes + offsets) % n_categories
        out = np.where(flip, flipped, truth_codes).astype(np.int32)
        out[~labeled] = -1
        return out


def expected_categorical_accuracy(model: NoiseModel, gamma: float) -> float:
    """Probability a source reports the true category (test oracle)."""
    return 1.0 - model.flip_threshold(gamma)
