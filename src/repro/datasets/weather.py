"""Synthetic weather-forecast integration workload (Section 3.2.1).

The paper crawls forecasts from three platforms (Wunderground, HAM
Weather, World Weather Online), treating each platform's 1/2/3-day-ahead
forecast as a separate source — nine sources total — for 20 US cities over
a month, with three properties: high temperature, low temperature
(continuous) and weather condition (categorical).  Ground truth is the
observed weather; only a subset of entries is labeled (1,740 of 1,920 at
paper scale).

This generator reproduces that workload synthetically:

* each city follows a seasonal + AR(1) temperature process, and its daily
  condition is drawn conditioned on temperature (hot & dry -> sunny, cold
  -> snow, ...), so conditions correlate with the continuous properties
  exactly as real weather does;
* each source's error scale is ``platform quality x horizon degradation``
  — a 3-day-ahead forecast from a sloppy platform is much noisier than a
  1-day-ahead forecast from a careful one — giving the nine sources the
  spread of reliability that Fig. 1 plots;
* ~7% of observations are missing and ~9% of objects carry no ground
  truth, matching Table 1's arithmetic.

Objects are (city, day) pairs; the day index doubles as the stream
timestamp for the I-CRH experiments (Figs. 4-6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.encoding import MISSING_CODE
from ..data.schema import DatasetSchema, categorical, continuous
from ..data.table import (
    MultiSourceDataset,
    PropertyObservations,
    TruthTable,
)
from .base import GeneratedData

CONDITIONS = ("sunny", "partly-cloudy", "cloudy", "rain", "storm", "snow")

_CITIES = (
    "new-york", "los-angeles", "chicago", "houston", "phoenix",
    "philadelphia", "san-antonio", "san-diego", "dallas", "san-jose",
    "austin", "jacksonville", "columbus", "fort-worth", "charlotte",
    "seattle", "denver", "boston", "detroit", "memphis",
)


@dataclass(frozen=True)
class WeatherConfig:
    """Knobs of the weather workload; defaults match the paper's Table 1."""

    n_cities: int = 20
    n_days: int = 32
    platforms: tuple[str, ...] = ("wunderground", "hamweather", "wwo")
    #: per-platform temperature error std in degrees F at horizon 1
    platform_quality: tuple[float, ...] = (1.2, 2.0, 3.2)
    #: error multiplier per forecast horizon (1, 2, 3 days ahead)
    horizon_factor: tuple[float, ...] = (1.0, 1.8, 2.8)
    #: per-platform condition error probability at horizon 1.
    #: Conditions are genuinely hard to forecast (and hard to normalize
    #: across sites), which is why the paper's weather error rates sit
    #: near 0.4-0.5 even for the best methods.
    platform_condition_error: tuple[float, ...] = (0.28, 0.40, 0.52)
    #: error multiplier per horizon for conditions
    condition_horizon_factor: tuple[float, ...] = (1.0, 1.25, 1.5)
    #: probability that a forecast is a gross blunder (stale page, wrong
    #: city, unit mix-up) off by tens of degrees — the outliers that make
    #: the weighted median (Eq. 15/16) the right continuous loss
    blunder_rate: float = 0.03
    #: probability that a wrong condition is the *climatological default*
    #: for that temperature rather than a uniform other value.  Sloppy
    #: forecast sites fall back to the seasonal norm, so their errors are
    #: correlated — the regime where majority voting is fooled but
    #: reliability-weighted voting is not.
    condition_bias: float = 0.65
    #: log-normal sigma of each source's per-category skill variation: a
    #: site may distinguish rain reliably yet constantly confuse the cloud
    #: variants.  Soft multi-source combination (CRH's weighted vote)
    #: averages these local weaknesses out; winner-take-all methods that
    #: commit to one globally-best source inherit its blind spots.
    category_skill_sigma: float = 0.6
    #: per-source missing-observation rate, drawn uniformly from this
    #: range: crawled sites differ a lot in coverage, and uneven claim
    #: counts are exactly what Section 2.5's count-normalization handles
    #: (and what hurts methods that split trust uniformly over claims).
    missing_rate_range: tuple[float, float] = (0.01, 0.22)
    truth_fraction: float = 580 / 640
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_cities < 1 or self.n_days < 1:
            raise ValueError("need at least one city and one day")
        if self.n_cities > len(_CITIES):
            raise ValueError(f"at most {len(_CITIES)} cities are named")
        if len(self.platform_quality) != len(self.platforms):
            raise ValueError("one quality value per platform required")
        if len(self.platform_condition_error) != len(self.platforms):
            raise ValueError("one condition-error value per platform required")
        if not 0 <= self.blunder_rate < 1:
            raise ValueError("blunder_rate must be in [0, 1)")
        if not 0 <= self.condition_bias <= 1:
            raise ValueError("condition_bias must be in [0, 1]")
        if self.category_skill_sigma < 0:
            raise ValueError("category_skill_sigma must be non-negative")
        lo, hi = self.missing_rate_range
        if not 0 <= lo <= hi < 1:
            raise ValueError(
                "missing_rate_range must satisfy 0 <= lo <= hi < 1"
            )
        if not 0 < self.truth_fraction <= 1:
            raise ValueError("truth_fraction must be in (0, 1]")

    @property
    def n_sources(self) -> int:
        return len(self.platforms) * len(self.horizon_factor)

    def source_ids(self) -> list[str]:
        """The nine platform/horizon source identifiers."""
        return [
            f"{platform}/day+{h + 1}"
            for platform in self.platforms
            for h in range(len(self.horizon_factor))
        ]

    def source_error_scales(self) -> np.ndarray:
        """Generative temperature-error std per source (tests' oracle)."""
        return np.array([
            quality * factor
            for quality in self.platform_quality
            for factor in self.horizon_factor
        ])

    def source_condition_errors(self) -> np.ndarray:
        """Generative condition error probability per source."""
        return np.array([
            min(err * factor, 0.85)
            for err in self.platform_condition_error
            for factor in self.condition_horizon_factor
        ])


def weather_schema() -> DatasetSchema:
    """The 3-property weather schema (2 continuous, 1 categorical)."""
    return DatasetSchema.of(
        continuous("high_temp", unit="F"),
        continuous("low_temp", unit="F"),
        categorical("condition", CONDITIONS),
    )


def _city_climate(rng: np.random.Generator, n_cities: int,
                  n_days: int) -> tuple[np.ndarray, np.ndarray]:
    """True (high, low) temperature matrices of shape (n_cities, n_days)."""
    base = rng.uniform(35.0, 95.0, n_cities)          # city climate
    swing = rng.uniform(12.0, 24.0, n_cities)         # day/night spread
    drift = rng.uniform(-0.4, 0.4, n_cities)          # seasonal trend per day
    highs = np.empty((n_cities, n_days))
    anomaly = rng.normal(0.0, 4.0, n_cities)
    for day in range(n_days):
        anomaly = 0.7 * anomaly + rng.normal(0.0, 3.0, n_cities)
        highs[:, day] = base + drift * day + anomaly
    lows = highs - swing[:, None] + rng.normal(0.0, 2.0, (n_cities, n_days))
    return highs.round(), lows.round()


def _condition_probabilities(high: float) -> np.ndarray:
    """Condition distribution given a day's high temperature."""
    # Columns follow CONDITIONS order.
    if high >= 85:
        p = [0.45, 0.25, 0.10, 0.10, 0.10, 0.00]
    elif high >= 65:
        p = [0.30, 0.25, 0.20, 0.17, 0.08, 0.00]
    elif high >= 40:
        p = [0.20, 0.22, 0.28, 0.24, 0.04, 0.02]
    else:
        p = [0.15, 0.18, 0.27, 0.05, 0.02, 0.33]
    return np.asarray(p)


def generate_weather_dataset(
    config: WeatherConfig | None = None,
    seed: int | None = None,
) -> GeneratedData:
    """Generate the weather workload; see module docstring.

    ``seed`` overrides ``config.seed`` for convenience:
    ``generate_weather_dataset(seed=7)``.
    """
    if config is None:
        config = WeatherConfig()
    if seed is not None:
        config = WeatherConfig(**{**config.__dict__, "seed": seed})
    rng = np.random.default_rng(config.seed)
    schema = weather_schema()
    n_cities, n_days = config.n_cities, config.n_days
    n = n_cities * n_days
    k = config.n_sources

    highs, lows = _city_climate(rng, n_cities, n_days)
    true_high = highs.ravel()
    true_low = lows.ravel()
    condition_codes = np.empty(n, dtype=np.int32)
    default_wrong = np.empty(n, dtype=np.int32)
    for i, high in enumerate(true_high):
        probabilities = _condition_probabilities(high)
        condition_codes[i] = rng.choice(len(CONDITIONS), p=probabilities)
        # The climatological fallback a lazy site would publish: the most
        # likely condition for this temperature that is not the truth.
        ranked = np.argsort(-probabilities)
        default_wrong[i] = (
            ranked[1] if ranked[0] == condition_codes[i] else ranked[0]
        )

    object_ids = [
        f"{_CITIES[c]}/{day:02d}"
        for c in range(n_cities)
        for day in range(n_days)
    ]
    timestamps = np.tile(np.arange(n_days), n_cities)

    temp_scales = config.source_error_scales()
    cond_errors = config.source_condition_errors()

    high_obs = np.empty((k, n))
    low_obs = np.empty((k, n))
    cond_obs = np.empty((k, n), dtype=np.int32)
    # Gross blunders scale with how sloppy the source already is.
    blunder_rates = config.blunder_rate * (
        temp_scales / temp_scales.max()
    ) * 2.0
    for src in range(k):
        high_obs[src] = (true_high
                         + rng.normal(0.0, temp_scales[src], n)).round()
        low_obs[src] = (true_low
                        + rng.normal(0.0, temp_scales[src], n)).round()
        blunder = rng.random(n) < blunder_rates[src]
        if blunder.any():
            magnitude = rng.uniform(15.0, 40.0, int(blunder.sum()))
            sign = np.where(rng.random(int(blunder.sum())) < 0.5, -1.0, 1.0)
            high_obs[src, blunder] += (sign * magnitude).round()
            low_obs[src, blunder] += (sign * magnitude).round()
        skill = np.exp(
            rng.normal(0.0, config.category_skill_sigma, len(CONDITIONS))
        )
        per_entry_error = np.clip(
            cond_errors[src] * skill[condition_codes], 0.0, 0.9
        )
        flip = rng.random(n) < per_entry_error
        offsets = rng.integers(1, len(CONDITIONS), n)
        uniform_wrong = (condition_codes + offsets) % len(CONDITIONS)
        to_default = rng.random(n) < config.condition_bias
        wrong = np.where(to_default, default_wrong, uniform_wrong)
        cond_obs[src] = np.where(flip, wrong, condition_codes)
    # Forecasts never invert high/low.
    low_obs = np.minimum(low_obs, high_obs - 1.0)

    lo, hi = config.missing_rate_range
    if hi > 0:
        source_missing = rng.uniform(lo, hi, k)[:, None]
        for matrix in (high_obs, low_obs):
            matrix[rng.random((k, n)) < source_missing] = np.nan
        cond_obs[rng.random((k, n)) < source_missing] = MISSING_CODE

    # Build property matrices through a builder-free fast path.
    from ..data.encoding import CategoricalCodec

    codec = CategoricalCodec.from_domain(CONDITIONS)
    properties = [
        PropertyObservations(schema=schema[0], values=high_obs),
        PropertyObservations(schema=schema[1], values=low_obs),
        PropertyObservations(schema=schema[2], values=cond_obs, codec=codec),
    ]
    dataset = MultiSourceDataset(
        schema=schema,
        source_ids=config.source_ids(),
        object_ids=object_ids,
        properties=properties,
        object_timestamps=timestamps,
    )

    # Partial ground truth: a random subset of objects is labeled.
    n_labeled = max(1, round(config.truth_fraction * n))
    labeled = np.zeros(n, dtype=bool)
    labeled[rng.choice(n, size=n_labeled, replace=False)] = True
    truth_high = np.where(labeled, true_high, np.nan)
    truth_low = np.where(labeled, true_low, np.nan)
    truth_cond = np.where(labeled, condition_codes, MISSING_CODE).astype(
        np.int32
    )
    truth = TruthTable(
        schema=schema,
        object_ids=object_ids,
        columns=[truth_high, truth_low, truth_cond],
        codecs={"condition": codec},
    )
    return GeneratedData(
        dataset=dataset,
        truth=truth,
        source_error_scale=temp_scales,
    )
