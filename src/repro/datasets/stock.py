"""Synthetic stock-quote integration workload (Section 3.2.1).

The paper uses the deep-web stock corpus of Li et al. [11]: 1,000 stock
symbols observed on every July 2011 trading day by 55 sources, with 16
properties.  Following the paper's heterogeneous treatment, *volume*,
*shares outstanding* and *market cap* are continuous and the remaining 13
price-like properties are categorical "facts" (exact string agreement is
what counts — a price of 26.74 is simply a different fact than 26.75).

The generator reproduces the corpus's structure:

* per-symbol geometric-Brownian daily price processes, from which the 13
  fact properties (open/close/high/low/last, changes, ratios, 52-week
  bounds, ...) are derived and formatted as strings;
* 55 sources with a long-tailed error distribution: most are accurate,
  a few are sloppy (report a stale or tick-perturbed price) — the regime
  where source-reliability estimation beats voting;
* heavy-tailed continuous properties (volume in the millions, market cap
  in the billions) that make *outlier robustness* matter, which is why
  the paper's CRH uses the weighted median there;
* ~35% missing observations (matching 11.7M observations over
  55 x 326k entries), and ground truth on ~9% of entries.

Objects are (symbol, day) pairs; the day index is the stream timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.encoding import MISSING_CODE, CategoricalCodec
from ..data.schema import DatasetSchema, categorical, continuous
from ..data.table import (
    MultiSourceDataset,
    PropertyObservations,
    TruthTable,
)
from .base import GeneratedData

#: The 13 price-like properties treated as categorical facts.
FACT_PROPERTIES = (
    "last_price", "open_price", "close_price", "high", "low",
    "change_amount", "change_pct", "eps", "pe_ratio", "dividend",
    "yield_pct", "wk52_high", "wk52_low",
)
#: The 3 continuous properties (the paper's explicit list).
CONTINUOUS_PROPERTIES = ("volume", "shares_outstanding", "market_cap")


@dataclass(frozen=True)
class StockConfig:
    """Knobs of the stock workload.

    Paper scale is ``n_symbols=1000, n_days=21, n_sources=55``; defaults
    are scaled down so the Table 2 benchmark finishes in seconds.
    """

    n_symbols: int = 100
    n_days: int = 10
    n_sources: int = 55
    #: per-source missing-observation rate range (deep-web coverage varies
    #: hugely between aggregators); overall mean ~0.35 matches Table 1
    missing_rate_range: tuple[float, float] = (0.15, 0.55)
    #: number of upstream feeds the sources copy from.  Feed 0 is the
    #: official (truth-aligned) feed; the others err independently.
    #: Copying clusters are what make wrong values *correlated* in the
    #: real deep-web stock corpus — majority voting elects a stale feed's
    #: value whenever enough clusters go stale together, which is the
    #: regime where source-reliability estimation is required.
    n_feeds: int = 8
    #: fraction of sources wired to the official feed
    official_fraction: float = 0.15
    #: probability that a wrong feed value is a *stale snapshot* (the
    #: previous trading day's value, shared across all stale feeds)
    #: rather than an independent perturbation
    stale_bias: float = 0.75
    #: per-source transcription error rate on top of the feed value
    transcription_error: float = 0.02
    #: probability scale of unit mix-ups on continuous properties
    #: (volume in thousands, market cap in millions): the gross outliers
    #: that the weighted median absorbs and mean/squared losses do not
    unit_error_rate: float = 0.015
    truth_fraction: float = 0.09
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.n_symbols, self.n_days, self.n_sources) < 1:
            raise ValueError("sizes must be positive")
        lo, hi = self.missing_rate_range
        if not 0 <= lo <= hi < 1:
            raise ValueError(
                "missing_rate_range must satisfy 0 <= lo <= hi < 1"
            )
        if not 0 <= self.stale_bias <= 1:
            raise ValueError("stale_bias must be in [0, 1]")
        if self.n_feeds < 2:
            raise ValueError("need at least an official and one other feed")
        if not 0 < self.official_fraction < 1:
            raise ValueError("official_fraction must be in (0, 1)")
        if not 0 <= self.transcription_error < 1:
            raise ValueError("transcription_error must be in [0, 1)")
        if not 0 <= self.unit_error_rate < 1:
            raise ValueError("unit_error_rate must be in [0, 1)")
        if not 0 < self.truth_fraction <= 1:
            raise ValueError("truth_fraction must be in (0, 1]")


def stock_schema() -> DatasetSchema:
    """The 16-property stock schema (3 continuous, 13 fact-like)."""
    props = [continuous(name) for name in CONTINUOUS_PROPERTIES]
    props += [categorical(name) for name in FACT_PROPERTIES]
    return DatasetSchema.of(*props)


def _fmt(value: float, decimals: int = 2) -> str:
    return f"{value:.{decimals}f}"


def generate_stock_dataset(
    config: StockConfig | None = None,
    seed: int | None = None,
) -> GeneratedData:
    """Generate the stock workload; see module docstring."""
    if config is None:
        config = StockConfig()
    if seed is not None:
        config = StockConfig(**{**config.__dict__, "seed": seed})
    rng = np.random.default_rng(config.seed)
    schema = stock_schema()
    n_symbols, n_days, k = config.n_symbols, config.n_days, config.n_sources
    n = n_symbols * n_days

    # --- true per-symbol processes -----------------------------------
    start_price = rng.lognormal(3.3, 0.9, n_symbols)          # ~$27 median
    daily_return = rng.normal(0.0, 0.02, (n_symbols, n_days))
    price = start_price[:, None] * np.exp(np.cumsum(daily_return, axis=1))
    open_price = price * np.exp(rng.normal(0, 0.005, price.shape))
    high = np.maximum(price, open_price) * np.exp(
        np.abs(rng.normal(0, 0.008, price.shape))
    )
    low = np.minimum(price, open_price) * np.exp(
        -np.abs(rng.normal(0, 0.008, price.shape))
    )
    prev_close = np.concatenate(
        [open_price[:, :1], price[:, :-1]], axis=1
    )
    change_amount = price - prev_close
    with np.errstate(divide="ignore", invalid="ignore"):
        change_pct = 100.0 * change_amount / prev_close
    eps = rng.lognormal(0.5, 0.8, n_symbols)
    pe_ratio = price / eps[:, None]
    dividend = np.where(
        rng.random(n_symbols) < 0.55, rng.lognormal(-0.5, 0.7, n_symbols), 0.0
    )
    yield_pct = 100.0 * dividend[:, None] / price
    wk52_high = price.max(axis=1, keepdims=True) * np.exp(
        np.abs(rng.normal(0, 0.15, (n_symbols, 1)))
    ) * np.ones_like(price)
    wk52_low = price.min(axis=1, keepdims=True) * np.exp(
        -np.abs(rng.normal(0, 0.15, (n_symbols, 1)))
    ) * np.ones_like(price)

    shares = rng.lognormal(17.5, 1.2, n_symbols)               # ~40M median
    shares_daily = np.repeat(shares[:, None], n_days, axis=1)
    volume = (shares[:, None] * rng.lognormal(-4.5, 0.9,
                                              (n_symbols, n_days)))
    market_cap = shares_daily * price

    fact_truth_values = {
        "last_price": price, "open_price": open_price,
        "close_price": prev_close, "high": high, "low": low,
        "change_amount": change_amount, "change_pct": change_pct,
        "eps": np.repeat(eps[:, None], n_days, axis=1),
        "pe_ratio": pe_ratio,
        "dividend": np.repeat(dividend[:, None], n_days, axis=1),
        "yield_pct": yield_pct, "wk52_high": wk52_high, "wk52_low": wk52_low,
    }
    continuous_truth_values = {
        "volume": np.round(volume), "shares_outstanding": shares_daily,
        "market_cap": np.round(market_cap),
    }

    object_ids = [
        f"SYM{s:04d}/{d:02d}" for s in range(n_symbols) for d in range(n_days)
    ]
    timestamps = np.tile(np.arange(n_days), n_symbols)

    # --- upstream feeds and source wiring -----------------------------
    # Sources copy one of a handful of upstream feeds.  Feed 0 is the
    # official feed (always correct); every other feed errs per entry
    # with its own rate, usually by serving the shared stale snapshot.
    n_feeds = config.n_feeds
    n_official = max(1, round(config.official_fraction * k))
    feed_of_source = np.concatenate([
        np.zeros(n_official, dtype=np.int64),
        rng.integers(1, n_feeds, k - n_official),
    ])
    feed_error = np.concatenate([
        [0.005],
        np.sort(np.clip(rng.beta(1.6, 3.0, n_feeds - 1), 0.05, 0.9)),
    ])
    feed_noise = 0.01 + 0.6 * feed_error          # continuous noise factor
    transcription = rng.uniform(0.2, 1.8, k) * config.transcription_error
    unit_error = config.unit_error_rate * np.clip(
        feed_error[feed_of_source] + transcription, 0.0, 1.0
    )
    source_missing = rng.uniform(*config.missing_rate_range, size=k)
    # Generative per-source unreliability (the tests' oracle).
    error_scale = feed_error[feed_of_source] + transcription

    def stale_copy(truth_grid: np.ndarray) -> np.ndarray:
        """Previous trading day's values — the shared stale snapshot."""
        return np.concatenate(
            [truth_grid[:, :1], truth_grid[:, :-1]], axis=1
        ).ravel()

    codecs: dict[str, CategoricalCodec] = {
        name: CategoricalCodec() for name in FACT_PROPERTIES
    }
    properties: list[PropertyObservations] = []

    for prop in schema:
        missing = rng.random((k, n)) < source_missing[:, None]
        if prop.is_continuous:
            truth_flat = continuous_truth_values[prop.name].ravel()
            # Feed-level multiplicative noise, shared by the feed's copiers.
            feed_values = np.empty((n_feeds, n))
            for f in range(n_feeds):
                factor = np.exp(rng.normal(0.0, feed_noise[f], n))
                feed_values[f] = truth_flat * factor
            matrix = np.empty((k, n))
            for src in range(k):
                observed = feed_values[feed_of_source[src]]
                # Unit mix-ups (thousands vs units, millions vs billions):
                # the gross outliers the weighted median absorbs.
                mixed_up = rng.random(n) < unit_error[src]
                if mixed_up.any():
                    scale = np.where(rng.random(n) < 0.5, 1e-2, 1e2)
                    observed = np.where(mixed_up, observed * scale, observed)
                matrix[src] = np.round(observed)
            matrix[missing] = np.nan
            properties.append(
                PropertyObservations(schema=prop, values=matrix)
            )
        else:
            truth_flat = fact_truth_values[prop.name].ravel()
            stale_flat = stale_copy(fact_truth_values[prop.name])
            codec = codecs[prop.name]
            # Feed-level fact values: wrong feeds mostly serve the shared
            # stale snapshot; several feeds going stale together outvote
            # the official feed — voting's failure mode in this corpus.
            feed_values = np.empty((n_feeds, n))
            for f in range(n_feeds):
                wrong = rng.random(n) < feed_error[f]
                stale = rng.random(n) < config.stale_bias
                ticks = rng.integers(1, 25, n) * np.where(
                    rng.random(n) < 0.5, -0.01, 0.01
                )
                perturbed = truth_flat + ticks * np.maximum(
                    np.abs(truth_flat), 1.0
                )
                feed_values[f] = np.where(
                    wrong, np.where(stale, stale_flat, perturbed), truth_flat
                )
            matrix = np.empty((k, n), dtype=np.int32)
            for src in range(k):
                observed = feed_values[feed_of_source[src]]
                typo = rng.random(n) < transcription[src]
                if typo.any():
                    ticks = rng.integers(1, 10, n) * np.where(
                        rng.random(n) < 0.5, -0.01, 0.01
                    )
                    observed = np.where(
                        typo,
                        observed + ticks * np.maximum(np.abs(observed), 1.0),
                        observed,
                    )
                matrix[src] = np.fromiter(
                    (codec.encode(_fmt(v)) for v in observed),
                    dtype=np.int32, count=n,
                )
            matrix[missing] = MISSING_CODE
            properties.append(
                PropertyObservations(schema=prop, values=matrix, codec=codec)
            )

    dataset = MultiSourceDataset(
        schema=schema,
        source_ids=[f"stock-site-{i:02d}" for i in range(k)],
        object_ids=object_ids,
        properties=properties,
        object_timestamps=timestamps,
    )

    # --- partial ground truth -----------------------------------------
    n_labeled = max(1, round(config.truth_fraction * n))
    labeled = np.zeros(n, dtype=bool)
    labeled[rng.choice(n, size=n_labeled, replace=False)] = True
    columns: list[np.ndarray] = []
    for prop in schema:
        if prop.is_continuous:
            col = continuous_truth_values[prop.name].ravel().astype(float)
            columns.append(np.where(labeled, col, np.nan))
        else:
            codec = codecs[prop.name]
            codes = codec.encode_many(
                [_fmt(v) for v in fact_truth_values[prop.name].ravel()]
            )
            columns.append(
                np.where(labeled, codes, MISSING_CODE).astype(np.int32)
            )
    truth = TruthTable(
        schema=schema, object_ids=object_ids, columns=columns, codecs=codecs,
    )
    return GeneratedData(
        dataset=dataset, truth=truth, source_error_scale=error_scale,
        extras={"feed_of_source": feed_of_source},
    )
