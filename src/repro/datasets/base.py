"""Common return type for the dataset generators."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.table import MultiSourceDataset, TruthTable


@dataclass(frozen=True)
class GeneratedData:
    """A generated workload: observations, ground truth, and the generative
    per-source error scales.

    ``source_error_scale`` is the knob each source was generated with
    (higher = noisier); it is *not* available to any truth-discovery
    method — tests and Fig. 1 use it to check that estimated reliability
    ranks sources correctly.
    """

    dataset: MultiSourceDataset
    truth: TruthTable
    source_error_scale: np.ndarray
    #: generator-specific ground-truth metadata (e.g. the stock
    #: generator's ``feed_of_source`` wiring); never visible to methods
    extras: dict = field(default_factory=dict)

    def __iter__(self):
        """Allow ``dataset, truth = generate_...()`` unpacking."""
        return iter((self.dataset, self.truth))

    def __post_init__(self) -> None:
        if len(self.source_error_scale) != self.dataset.n_sources:
            raise ValueError(
                "source_error_scale length does not match source count"
            )
