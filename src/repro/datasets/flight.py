"""Synthetic flight-status integration workload (Section 3.2.1).

The paper uses the deep-web flight corpus of Li et al. [11]: 1,200 flights
tracked daily over December 2011 by 38 sources, with 6 properties after
preprocessing — four time properties converted to minutes (scheduled /
actual departure and arrival, continuous) and two gate properties
(categorical).

The generator reproduces the corpus's failure structure:

* true actual times are scheduled times plus a delay mixture (mostly
  on-time with a heavy late tail);
* a fraction of sources are **stale**: they report the *scheduled* time
  as the actual time, the dominant real-world error in this corpus.
  Mean/Voting are pulled toward the scheduled time whenever stale sources
  outnumber fresh ones — the exact phenomenon source-reliability
  estimation fixes;
* gate observations from unreliable sources are flipped to another gate;
* ~64% of (source, entry) observations are missing (matching 2.79M
  observations over 38 x 204k entries), and ground truth covers ~8% of
  entries.

Objects are (flight, day) pairs; the day index is the stream timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.encoding import MISSING_CODE, CategoricalCodec
from ..data.schema import DatasetSchema, categorical, continuous
from ..data.table import (
    MultiSourceDataset,
    PropertyObservations,
    TruthTable,
)
from .base import GeneratedData

_GATES = tuple(
    f"{terminal}{number}" for terminal in "ABCD" for number in range(1, 13)
)


@dataclass(frozen=True)
class FlightConfig:
    """Knobs of the flight workload.

    Paper scale is ``n_flights=1200, n_days=31, n_sources=38``; defaults
    are scaled down so the Table 2 benchmark finishes in seconds.
    """

    n_flights: int = 120
    n_days: int = 10
    n_sources: int = 38
    #: fraction of sources that copy scheduled times as actual times and
    #: the flight's usual gate as the actual gate
    stale_fraction: float = 0.35
    #: probability that a flight's actual gate differs from its usual one
    #: on a given day (stale sources still report the usual gate then)
    gate_change_rate: float = 0.3
    #: per-source missing-observation rate range; overall mean ~0.64
    #: matches Table 1's 2.79M observations over 38 x 204k entries
    missing_rate_range: tuple[float, float] = (0.45, 0.83)
    truth_fraction: float = 0.08
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.n_flights, self.n_days, self.n_sources) < 1:
            raise ValueError("sizes must be positive")
        if not 0 <= self.stale_fraction <= 1:
            raise ValueError("stale_fraction must be in [0, 1]")
        if not 0 <= self.gate_change_rate <= 1:
            raise ValueError("gate_change_rate must be in [0, 1]")
        lo, hi = self.missing_rate_range
        if not 0 <= lo <= hi < 1:
            raise ValueError(
                "missing_rate_range must satisfy 0 <= lo <= hi < 1"
            )
        if not 0 < self.truth_fraction <= 1:
            raise ValueError("truth_fraction must be in (0, 1]")


def flight_schema() -> DatasetSchema:
    """The 6-property flight schema (4 continuous, 2 categorical)."""
    return DatasetSchema.of(
        continuous("scheduled_departure", unit="minutes"),
        continuous("actual_departure", unit="minutes"),
        continuous("scheduled_arrival", unit="minutes"),
        continuous("actual_arrival", unit="minutes"),
        categorical("departure_gate", _GATES),
        categorical("arrival_gate", _GATES),
    )


def _delay_mixture(rng: np.random.Generator, size: int) -> np.ndarray:
    """Delay in minutes: mostly near-schedule, heavy late tail."""
    on_time = rng.normal(0.0, 5.0, size)
    late = rng.exponential(35.0, size) + 10.0
    is_late = rng.random(size) < 0.35
    return np.where(is_late, late, on_time).round()


def generate_flight_dataset(
    config: FlightConfig | None = None,
    seed: int | None = None,
) -> GeneratedData:
    """Generate the flight workload; see module docstring."""
    if config is None:
        config = FlightConfig()
    if seed is not None:
        config = FlightConfig(**{**config.__dict__, "seed": seed})
    rng = np.random.default_rng(config.seed)
    schema = flight_schema()
    n_flights, n_days, k = config.n_flights, config.n_days, config.n_sources
    n = n_flights * n_days

    # --- true flight processes ---------------------------------------
    sched_dep_base = rng.integers(5 * 60, 23 * 60, n_flights)  # minute of day
    duration = rng.integers(45, 6 * 60, n_flights)
    sched_dep = np.repeat(sched_dep_base, n_days).astype(np.float64)
    sched_arr = sched_dep + np.repeat(duration, n_days)
    dep_delay = _delay_mixture(rng, n)
    act_dep = sched_dep + dep_delay
    # Arrival delay correlates with departure delay but can recover.
    act_arr = sched_arr + dep_delay * rng.uniform(0.6, 1.1, n) \
        + rng.normal(0.0, 6.0, n)
    act_arr = act_arr.round()
    # Gates: each flight has a usual gate, but on some days it is moved —
    # stale sources keep publishing the usual gate on exactly those days.
    def gate_truth() -> tuple[np.ndarray, np.ndarray]:
        usual = np.repeat(
            rng.integers(0, len(_GATES), n_flights), n_days
        ).astype(np.int32)
        moved = rng.random(n) < config.gate_change_rate
        offsets = rng.integers(1, len(_GATES), n)
        actual = np.where(
            moved, (usual + offsets) % len(_GATES), usual
        ).astype(np.int32)
        return usual, actual

    dep_gate_usual, dep_gate = gate_truth()
    arr_gate_usual, arr_gate = gate_truth()

    object_ids = [
        f"FL{f:04d}/{d:02d}" for f in range(n_flights) for d in range(n_days)
    ]
    timestamps = np.tile(np.arange(n_days), n_flights)

    # --- source profiles ----------------------------------------------
    n_stale = round(config.stale_fraction * k)
    stale = np.zeros(k, dtype=bool)
    stale[rng.choice(k, size=n_stale, replace=False)] = True
    time_noise = np.clip(rng.gamma(2.0, 2.0, k), 0.5, 20.0)   # minutes
    gate_error = np.clip(rng.beta(1.5, 8.0, k), 0.01, 0.6)
    # A stale source is "bad" regardless of its nominal noise level.
    error_scale = np.where(stale, 30.0 + time_noise, time_noise)

    codec_dep = CategoricalCodec.from_domain(_GATES)
    codec_arr = CategoricalCodec.from_domain(_GATES)

    def observe_time(truth_vals: np.ndarray, scheduled: np.ndarray,
                     allow_stale: bool) -> np.ndarray:
        matrix = np.empty((k, n))
        for src in range(k):
            if allow_stale and stale[src]:
                # Stale sources republish the schedule with tiny jitter.
                base = scheduled
                noise = rng.normal(0.0, 1.0, n)
            else:
                base = truth_vals
                noise = rng.normal(0.0, time_noise[src], n)
            matrix[src] = np.round(base + noise)
        return matrix

    def observe_gate(truth_codes: np.ndarray,
                     usual_codes: np.ndarray) -> np.ndarray:
        matrix = np.empty((k, n), dtype=np.int32)
        for src in range(k):
            if stale[src]:
                # Stale sources republish the usual gate; they are wrong
                # on exactly the gate-change days, all in the same way.
                base = usual_codes
            else:
                base = truth_codes
            flip = rng.random(n) < gate_error[src]
            offsets = rng.integers(1, len(_GATES), n)
            matrix[src] = np.where(
                flip, (base + offsets) % len(_GATES), base
            )
        return matrix

    matrices: dict[str, np.ndarray] = {
        "scheduled_departure": observe_time(sched_dep, sched_dep, False),
        "actual_departure": observe_time(act_dep, sched_dep, True),
        "scheduled_arrival": observe_time(sched_arr, sched_arr, False),
        "actual_arrival": observe_time(act_arr, sched_arr, True),
        "departure_gate": observe_gate(dep_gate, dep_gate_usual),
        "arrival_gate": observe_gate(arr_gate, arr_gate_usual),
    }
    source_missing = rng.uniform(*config.missing_rate_range, size=k)[:, None]
    for name, matrix in matrices.items():
        drop = rng.random((k, n)) < source_missing
        if schema[name].is_categorical:
            matrix[drop] = MISSING_CODE
        else:
            matrix[drop] = np.nan

    properties = [
        PropertyObservations(schema=schema[0],
                             values=matrices["scheduled_departure"]),
        PropertyObservations(schema=schema[1],
                             values=matrices["actual_departure"]),
        PropertyObservations(schema=schema[2],
                             values=matrices["scheduled_arrival"]),
        PropertyObservations(schema=schema[3],
                             values=matrices["actual_arrival"]),
        PropertyObservations(schema=schema[4],
                             values=matrices["departure_gate"],
                             codec=codec_dep),
        PropertyObservations(schema=schema[5],
                             values=matrices["arrival_gate"],
                             codec=codec_arr),
    ]
    dataset = MultiSourceDataset(
        schema=schema,
        source_ids=[f"flight-site-{i:02d}" for i in range(k)],
        object_ids=object_ids,
        properties=properties,
        object_timestamps=timestamps,
    )

    n_labeled = max(1, round(config.truth_fraction * n))
    labeled = np.zeros(n, dtype=bool)
    labeled[rng.choice(n, size=n_labeled, replace=False)] = True
    truth = TruthTable(
        schema=schema,
        object_ids=object_ids,
        columns=[
            np.where(labeled, sched_dep, np.nan),
            np.where(labeled, act_dep, np.nan),
            np.where(labeled, sched_arr, np.nan),
            np.where(labeled, act_arr, np.nan),
            np.where(labeled, dep_gate, MISSING_CODE).astype(np.int32),
            np.where(labeled, arr_gate, MISSING_CODE).astype(np.int32),
        ],
        codecs={"departure_gate": codec_dep, "arrival_gate": codec_arr},
    )
    return GeneratedData(
        dataset=dataset, truth=truth, source_error_scale=error_scale,
    )
