"""Workload generators reproducing the paper's evaluation datasets.

Real crawled corpora (weather sites, deep-web stock/flight pages, UCI
downloads) are not available offline, so each is replaced by a seeded
synthetic generator that preserves the structure the experiments exercise
— heterogeneous property types, sources with distinct-but-consistent
reliability, realistic missing rates and partial ground truth.  See
DESIGN.md ("Substitutions") for the per-dataset argument.
"""

from .base import GeneratedData
from .flight import FlightConfig, flight_schema, generate_flight_dataset
from .multisource import (
    PAPER_GAMMAS,
    reliable_unreliable_mix,
    simulate_sources,
)
from .noise import NoiseModel, expected_categorical_accuracy
from .stats import DatasetStatistics, dataset_statistics
from .stock import StockConfig, generate_stock_dataset, stock_schema
from .uci_io import UCIFormatError, load_adult_truth, load_bank_truth
from .uci import (
    ADULT_FULL_OBJECTS,
    ADULT_ROUNDING,
    BANK_FULL_OBJECTS,
    BANK_ROUNDING,
    adult_schema,
    bank_schema,
    generate_adult_truth,
    generate_bank_truth,
)
from .weather import (
    CONDITIONS,
    WeatherConfig,
    generate_weather_dataset,
    weather_schema,
)

__all__ = [
    "ADULT_FULL_OBJECTS",
    "ADULT_ROUNDING",
    "BANK_FULL_OBJECTS",
    "BANK_ROUNDING",
    "CONDITIONS",
    "DatasetStatistics",
    "FlightConfig",
    "GeneratedData",
    "NoiseModel",
    "PAPER_GAMMAS",
    "StockConfig",
    "UCIFormatError",
    "WeatherConfig",
    "adult_schema",
    "bank_schema",
    "dataset_statistics",
    "expected_categorical_accuracy",
    "flight_schema",
    "generate_adult_truth",
    "generate_bank_truth",
    "generate_flight_dataset",
    "generate_stock_dataset",
    "generate_weather_dataset",
    "load_adult_truth",
    "load_bank_truth",
    "reliable_unreliable_mix",
    "simulate_sources",
    "stock_schema",
    "weather_schema",
]
