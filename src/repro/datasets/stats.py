"""Dataset statistics in the shape of Tables 1 and 3."""

from __future__ import annotations

from dataclasses import dataclass

from ..data.table import MultiSourceDataset, TruthTable


@dataclass(frozen=True)
class DatasetStatistics:
    """The three counters the paper reports per dataset."""

    name: str
    n_observations: int
    n_entries: int
    n_ground_truths: int

    def as_row(self) -> tuple[str, int, int, int]:
        """The counters as a (name, obs, entries, truths) row."""
        return (self.name, self.n_observations, self.n_entries,
                self.n_ground_truths)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: observations={self.n_observations:,} "
            f"entries={self.n_entries:,} truths={self.n_ground_truths:,}"
        )


def dataset_statistics(name: str, dataset: MultiSourceDataset,
                       truth: TruthTable) -> DatasetStatistics:
    """Compute the Table 1 / Table 3 counters for one dataset."""
    return DatasetStatistics(
        name=name,
        n_observations=dataset.n_observations(),
        n_entries=dataset.n_entries(),
        n_ground_truths=truth.n_truths(),
    )
