"""Loaders for the *real* UCI Adult and Bank Marketing files.

The offline default pipeline uses the synthetic schema-faithful
generators in :mod:`repro.datasets.uci`; when the actual UCI files are
available (``adult.data`` from the Census Income dataset,
``bank-full.csv`` from Bank Marketing), these loaders parse them into
the same :class:`~repro.data.table.TruthTable` shape, so the Section
3.2.2 experiments can run on the paper's exact ground truth:

    truth = load_adult_truth("adult.data")
    dataset = simulate_sources(truth, PAPER_GAMMAS, rng,
                               rounding=ADULT_ROUNDING)

Both loaders are tolerant of the files' quirks: UCI's ``?`` missing
markers (rows kept, the cell left unlabeled), the trailing
``, <=50K``/``>50K`` income column that is not one of the 14 evaluated
properties, and the bank file's semicolon separators and quoted fields.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..data.table import TruthTable
from .uci import adult_schema, bank_schema

#: column order of adult.data (the 15th column is the income label)
_ADULT_COLUMNS = (
    "age", "workclass", "fnlwgt", "education", "education_num",
    "marital_status", "occupation", "relationship", "race", "sex",
    "capital_gain", "capital_loss", "hours_per_week", "native_country",
)
#: column order of bank-full.csv (the 17th column is the 'y' label)
_BANK_COLUMNS = (
    "age", "job", "marital", "education", "default", "balance",
    "housing", "loan", "contact", "day", "month", "duration",
    "campaign", "pdays", "previous",
)


class UCIFormatError(ValueError):
    """The file does not look like the expected UCI dataset."""


def load_adult_truth(path: str | Path,
                     limit: int | None = None) -> TruthTable:
    """Parse ``adult.data`` (or ``adult.test``) into a truth table.

    ``limit`` caps the number of rows (handy for quick runs).  UCI's
    ``?`` markers become unlabeled entries; blank/comment lines and the
    test file's trailing ``.`` on labels are tolerated.
    """
    path = Path(path)
    schema = adult_schema()
    values: dict[str, list] = {p.name: [] for p in schema}
    object_ids: list[str] = []
    with path.open(newline="") as handle:
        for row_number, line in enumerate(handle):
            line = line.strip()
            if not line or line.startswith("|"):
                continue
            fields = [f.strip() for f in line.split(",")]
            if len(fields) < len(_ADULT_COLUMNS):
                raise UCIFormatError(
                    f"{path}:{row_number + 1}: expected >= "
                    f"{len(_ADULT_COLUMNS)} comma-separated fields, got "
                    f"{len(fields)}"
                )
            object_ids.append(f"adult_{len(object_ids)}")
            for name, raw in zip(_ADULT_COLUMNS, fields):
                prop = schema[name]
                if raw == "?":
                    values[name].append(
                        None if prop.uses_codec else float("nan")
                    )
                elif prop.is_continuous:
                    values[name].append(float(raw))
                else:
                    values[name].append(raw)
            if limit is not None and len(object_ids) >= limit:
                break
    if not object_ids:
        raise UCIFormatError(f"{path}: no data rows found")
    return TruthTable.from_labels(schema, object_ids, values)


def load_bank_truth(path: str | Path,
                    limit: int | None = None) -> TruthTable:
    """Parse ``bank-full.csv`` (semicolon-separated, quoted) into a
    truth table covering the 16 input properties the paper evaluates."""
    path = Path(path)
    schema = bank_schema()
    values: dict[str, list] = {p.name: [] for p in schema}
    object_ids: list[str] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=";", quotechar='"')
        header = next(reader, None)
        if header is None:
            raise UCIFormatError(f"{path}: empty file")
        header = [h.strip().strip('"') for h in header]
        missing = [c for c in _BANK_COLUMNS if c not in header]
        # bank-full.csv also has a 'poutcome' column our schema includes.
        if "poutcome" not in header:
            missing.append("poutcome")
        if missing:
            raise UCIFormatError(
                f"{path}: header lacks expected columns {missing}"
            )
        index = {name: header.index(name)
                 for name in (*_BANK_COLUMNS, "poutcome")}
        for row in reader:
            if not row:
                continue
            object_ids.append(f"bank_{len(object_ids)}")
            for name in (*_BANK_COLUMNS, "poutcome"):
                prop = schema[name]
                raw = row[index[name]].strip().strip('"')
                if prop.is_continuous:
                    values[name].append(float(raw))
                else:
                    values[name].append(raw)
            if limit is not None and len(object_ids) >= limit:
                break
    if not object_ids:
        raise UCIFormatError(f"{path}: no data rows found")
    return TruthTable.from_labels(schema, object_ids, values)
