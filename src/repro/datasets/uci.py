"""Schema-faithful synthetic stand-ins for the UCI Adult and Bank tables.

Section 3.2.2 uses the UCI Adult (census income) and Bank (marketing)
datasets purely as *ground-truth tables* to perturb into conflicting
multi-source observations.  With no network access we generate synthetic
truth tables with the same property names, data-type mix and realistic
marginal distributions:

* **Adult**: 14 properties — 6 continuous, 8 categorical — matching
  Table 3's entry arithmetic (32,561 objects x 14 properties = 455,854
  entries at full scale).
* **Bank**: 16 properties — 7 continuous, 9 categorical — matching
  45,211 objects x 16 properties = 723,376 entries at full scale.

What the downstream experiments need from these tables is only the type
mix, realistic category cardinalities (2-40) and continuous value scales
spanning several orders of magnitude; all of those are preserved.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import DatasetSchema, categorical, continuous
from ..data.table import TruthTable

#: Full-scale object counts matching Table 3 of the paper.
ADULT_FULL_OBJECTS = 32_561
BANK_FULL_OBJECTS = 45_211

#: Default scaled-down object counts so experiments finish on a laptop.
ADULT_DEFAULT_OBJECTS = 3_000
BANK_DEFAULT_OBJECTS = 3_000

_ADULT_WORKCLASS = (
    "Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
    "Local-gov", "State-gov", "Without-pay", "Never-worked",
)
_ADULT_EDUCATION = (
    "Bachelors", "Some-college", "11th", "HS-grad", "Prof-school",
    "Assoc-acdm", "Assoc-voc", "9th", "7th-8th", "12th", "Masters",
    "1st-4th", "10th", "Doctorate", "5th-6th", "Preschool",
)
_ADULT_MARITAL = (
    "Married-civ-spouse", "Divorced", "Never-married", "Separated",
    "Widowed", "Married-spouse-absent", "Married-AF-spouse",
)
_ADULT_OCCUPATION = (
    "Tech-support", "Craft-repair", "Other-service", "Sales",
    "Exec-managerial", "Prof-specialty", "Handlers-cleaners",
    "Machine-op-inspct", "Adm-clerical", "Farming-fishing",
    "Transport-moving", "Priv-house-serv", "Protective-serv",
    "Armed-Forces",
)
_ADULT_RELATIONSHIP = (
    "Wife", "Own-child", "Husband", "Not-in-family", "Other-relative",
    "Unmarried",
)
_ADULT_RACE = (
    "White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black",
)
_ADULT_SEX = ("Female", "Male")
_ADULT_COUNTRIES = (
    "United-States", "Cambodia", "England", "Puerto-Rico", "Canada",
    "Germany", "India", "Japan", "Greece", "South", "China", "Cuba",
    "Iran", "Honduras", "Philippines", "Italy", "Poland", "Jamaica",
    "Vietnam", "Mexico", "Portugal", "Ireland", "France",
    "Dominican-Republic", "Laos", "Ecuador", "Taiwan", "Haiti",
    "Columbia", "Hungary", "Guatemala", "Nicaragua", "Scotland",
    "Thailand", "Yugoslavia", "El-Salvador", "Trinadad&Tobago", "Peru",
    "Hong", "Holand-Netherlands",
)


def adult_schema() -> DatasetSchema:
    """The 14-property UCI Adult schema (6 continuous, 8 categorical)."""
    return DatasetSchema.of(
        continuous("age", unit="years"),
        categorical("workclass", _ADULT_WORKCLASS),
        continuous("fnlwgt"),
        categorical("education", _ADULT_EDUCATION),
        continuous("education_num"),
        categorical("marital_status", _ADULT_MARITAL),
        categorical("occupation", _ADULT_OCCUPATION),
        categorical("relationship", _ADULT_RELATIONSHIP),
        categorical("race", _ADULT_RACE),
        categorical("sex", _ADULT_SEX),
        continuous("capital_gain", unit="USD"),
        continuous("capital_loss", unit="USD"),
        continuous("hours_per_week", unit="hours"),
        categorical("native_country", _ADULT_COUNTRIES),
    )


def _skewed_choice(rng: np.random.Generator, n: int, size: int,
                   concentration: float = 1.2) -> np.ndarray:
    """Category draws with a realistic head-heavy (Zipf-like) distribution."""
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** concentration
    weights /= weights.sum()
    return rng.choice(n, size=size, p=weights)


def generate_adult_truth(n_objects: int = ADULT_DEFAULT_OBJECTS,
                         seed: int = 0) -> TruthTable:
    """Synthetic Adult-shaped ground-truth table.

    Marginals mimic the census data: ages 17-90 with a right skew, fnlwgt
    in the tens-to-hundreds of thousands, capital gains that are zero for
    most people with a heavy tail, 40-hour-modal work weeks, and head-heavy
    categorical distributions (most people work in ``Private``, most are
    from ``United-States``).
    """
    if n_objects < 1:
        raise ValueError("n_objects must be >= 1")
    rng = np.random.default_rng(seed)
    schema = adult_schema()
    age = np.clip(rng.gamma(6.0, 6.5, n_objects) + 17, 17, 90).round()
    fnlwgt = np.clip(rng.lognormal(12.0, 0.55, n_objects), 1e4, 1.5e6).round()
    education_num = np.clip(rng.normal(10, 2.6, n_objects), 1, 16).round()
    gain_mask = rng.random(n_objects) < 0.08
    capital_gain = np.where(
        gain_mask, rng.lognormal(8.3, 1.2, n_objects), 0.0
    ).round()
    loss_mask = rng.random(n_objects) < 0.05
    capital_loss = np.where(
        loss_mask, rng.lognormal(7.4, 0.4, n_objects), 0.0
    ).round()
    hours = np.clip(rng.normal(40.4, 12.3, n_objects), 1, 99).round()

    def cats(domain: tuple[str, ...], concentration: float = 1.2) -> list:
        idx = _skewed_choice(rng, len(domain), n_objects, concentration)
        return [domain[i] for i in idx]

    values = {
        "age": age,
        "workclass": cats(_ADULT_WORKCLASS, 1.8),
        "fnlwgt": fnlwgt,
        "education": cats(_ADULT_EDUCATION, 1.0),
        "education_num": education_num,
        "marital_status": cats(_ADULT_MARITAL, 0.9),
        "occupation": cats(_ADULT_OCCUPATION, 0.6),
        "relationship": cats(_ADULT_RELATIONSHIP, 0.8),
        "race": cats(_ADULT_RACE, 2.2),
        "sex": cats(_ADULT_SEX, 0.5),
        "capital_gain": capital_gain,
        "capital_loss": capital_loss,
        "hours_per_week": hours,
        "native_country": cats(_ADULT_COUNTRIES, 2.6),
    }
    object_ids = [f"adult_{i}" for i in range(n_objects)]
    return TruthTable.from_labels(schema, object_ids, values)


_BANK_JOB = (
    "admin.", "unknown", "unemployed", "management", "housemaid",
    "entrepreneur", "student", "blue-collar", "self-employed",
    "retired", "technician", "services",
)
_BANK_MARITAL = ("married", "divorced", "single")
_BANK_EDUCATION = ("unknown", "secondary", "primary", "tertiary")
_BANK_YESNO = ("yes", "no")
_BANK_CONTACT = ("unknown", "telephone", "cellular")
_BANK_MONTH = (
    "jan", "feb", "mar", "apr", "may", "jun",
    "jul", "aug", "sep", "oct", "nov", "dec",
)
_BANK_POUTCOME = ("unknown", "other", "failure", "success")


def bank_schema() -> DatasetSchema:
    """The 16-property UCI Bank Marketing schema (7 continuous, 9 categorical)."""
    return DatasetSchema.of(
        continuous("age", unit="years"),
        categorical("job", _BANK_JOB),
        categorical("marital", _BANK_MARITAL),
        categorical("education", _BANK_EDUCATION),
        categorical("default", _BANK_YESNO),
        continuous("balance", unit="EUR"),
        categorical("housing", _BANK_YESNO),
        categorical("loan", _BANK_YESNO),
        categorical("contact", _BANK_CONTACT),
        continuous("day"),
        categorical("month", _BANK_MONTH),
        continuous("duration", unit="seconds"),
        continuous("campaign"),
        continuous("pdays", unit="days"),
        continuous("previous"),
        categorical("poutcome", _BANK_POUTCOME),
    )


def generate_bank_truth(n_objects: int = BANK_DEFAULT_OBJECTS,
                        seed: int = 0) -> TruthTable:
    """Synthetic Bank-Marketing-shaped ground-truth table.

    Mimics the bank-full.csv marginals: balances centered near 1.4k EUR
    with negative values possible, call durations log-normal around
    4 minutes, ``pdays`` = -1 for the ~82% never previously contacted,
    and May-heavy contact months.
    """
    if n_objects < 1:
        raise ValueError("n_objects must be >= 1")
    rng = np.random.default_rng(seed)
    schema = bank_schema()
    age = np.clip(rng.gamma(9.0, 4.6, n_objects), 18, 95).round()
    balance = (rng.normal(1400, 3000, n_objects)
               + rng.exponential(800, n_objects)).round()
    day = rng.integers(1, 32, n_objects).astype(np.float64)
    duration = np.clip(rng.lognormal(5.3, 0.8, n_objects), 1, 5000).round()
    campaign = np.clip(rng.geometric(0.4, n_objects), 1, 60).astype(np.float64)
    contacted = rng.random(n_objects) < 0.18
    pdays = np.where(
        contacted, np.clip(rng.normal(220, 110, n_objects), 1, 900), -1.0
    ).round()
    previous = np.where(
        contacted, np.clip(rng.geometric(0.35, n_objects), 1, 50), 0.0
    )

    def cats(domain: tuple[str, ...], concentration: float = 1.0) -> list:
        idx = _skewed_choice(rng, len(domain), n_objects, concentration)
        return [domain[i] for i in idx]

    month_weights = np.array(
        [3, 6, 11, 7, 31, 12, 15, 14, 2, 2, 9, 5], dtype=np.float64
    )
    month_weights /= month_weights.sum()
    months = [
        _BANK_MONTH[i]
        for i in rng.choice(12, size=n_objects, p=month_weights)
    ]
    values = {
        "age": age,
        "job": cats(_BANK_JOB, 0.7),
        "marital": cats(_BANK_MARITAL, 0.8),
        "education": cats(_BANK_EDUCATION, 0.9),
        "default": [
            "yes" if flag else "no"
            for flag in rng.random(n_objects) < 0.018
        ],
        "balance": balance,
        "housing": cats(_BANK_YESNO, 0.2),
        "loan": [
            "yes" if flag else "no"
            for flag in rng.random(n_objects) < 0.16
        ],
        "contact": cats(_BANK_CONTACT, 0.8),
        "day": day,
        "month": months,
        "duration": duration,
        "campaign": campaign,
        "pdays": pdays,
        "previous": previous,
        "poutcome": cats(_BANK_POUTCOME, 1.4),
    }
    object_ids = [f"bank_{i}" for i in range(n_objects)]
    return TruthTable.from_labels(schema, object_ids, values)


#: Rounding rules ("physical meaning") for the continuous properties.
ADULT_ROUNDING: dict[str, int] = {
    "age": 0, "fnlwgt": 0, "education_num": 0,
    "capital_gain": 0, "capital_loss": 0, "hours_per_week": 0,
}
BANK_ROUNDING: dict[str, int] = {
    "age": 0, "balance": 0, "day": 0, "duration": 0,
    "campaign": 0, "pdays": 0, "previous": 0,
}
