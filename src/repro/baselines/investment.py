"""Investment and PooledInvestment — Pasternack & Roth, COLING 2010 [9].

Each source uniformly "invests" its trustworthiness across the claims it
makes; a claim's belief grows from the invested credit through a
non-linear growth function ``G(x) = x^g``, and sources earn trust back in
proportion to how much of each claim's belief their investment funded.

* **Investment** (g = 1.2): belief is ``G`` applied directly to the
  invested credit — a non-linear function of the sum of invested
  reliability, as Section 3.1.2 puts it.
* **PooledInvestment** (g = 1.4): invested credit is linearly scaled, then
  pooled within each entry's mutual-exclusion set:
  ``B(f) = H(f) * G(H(f)) / sum_{f' in entry} G(H(f'))``.

Trust scores are normalized to mean 1 every round, which is the standard
guard against the exponential blow-up of the raw recurrence.

Both methods run on the :class:`~repro.baselines.claims.ClaimGraph`
built from claim views, so dense and sparse backends are bit-identical;
process/mmap requests degrade (traced) to inline sparse execution via
:func:`~repro.baselines.claims.claim_graph_session`.
"""

from __future__ import annotations

import numpy as np

from ..core.result import TruthDiscoveryResult
from ..data.table import MultiSourceDataset
from .base import ConflictResolver, register_resolver
from .claims import ClaimGraph, claim_graph_session, winners_to_truth_table


class _InvestmentBase(ConflictResolver):
    """Shared trust/belief loop; subclasses define the belief function."""

    growth: float
    max_iterations: int
    tol: float

    def __init__(self, max_iterations: int = 20, tol: float = 1e-6,
                 **backend_kwargs) -> None:
        super().__init__(**backend_kwargs)
        self.max_iterations = max_iterations
        self.tol = tol

    def _beliefs(self, graph: ClaimGraph, invested: np.ndarray) -> np.ndarray:
        """Fact beliefs from invested credit; subclass responsibility."""
        raise NotImplementedError

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Iterate the invest/harvest trust recurrence to a fixpoint."""
        session, graph = claim_graph_session(self, dataset)
        try:
            return session.stamp(self._fit_graph(session.data, graph))
        finally:
            session.close()

    def _fit_graph(self, data, graph: ClaimGraph) -> TruthDiscoveryResult:
        claims_per_source = np.maximum(graph.claims_per_source(), 1)
        trust = np.ones(graph.n_sources)
        beliefs = np.zeros(graph.n_facts)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # Each source splits its trust evenly over its claims.
            per_claim = trust[graph.claim_source] / \
                claims_per_source[graph.claim_source]
            invested = graph.sum_claims_by_fact(per_claim)
            beliefs = self._beliefs(graph, invested)
            # Sources harvest belief proportional to their share of the
            # credit invested in each claim.
            safe_invested = np.maximum(invested, 1e-300)
            harvest = beliefs[graph.claim_fact] * per_claim / \
                safe_invested[graph.claim_fact]
            new_trust = graph.sum_claims_by_source(harvest)
            mean_trust = new_trust.mean()
            if mean_trust > 0:
                new_trust = new_trust / mean_trust
            delta = float(np.abs(new_trust - trust).max())
            trust = new_trust
            if delta < self.tol:
                converged = True
                break
        winners = graph.argmax_fact_per_entry(beliefs)
        truths = winners_to_truth_table(graph, data, winners)
        return TruthDiscoveryResult(
            truths=truths,
            weights=trust,
            source_ids=data.source_ids,
            method=self.name,
            iterations=iterations,
            converged=converged,
        )


@register_resolver
class InvestmentResolver(_InvestmentBase):
    """Investment with growth exponent 1.2 (the authors' suggestion)."""

    name = "Investment"
    growth = 1.2

    def _beliefs(self, graph: ClaimGraph, invested: np.ndarray) -> np.ndarray:
        return invested ** self.growth


@register_resolver
class PooledInvestmentResolver(_InvestmentBase):
    """PooledInvestment with growth exponent 1.4 (the authors' suggestion)."""

    name = "PooledInvestment"
    growth = 1.4

    def _beliefs(self, graph: ClaimGraph, invested: np.ndarray) -> np.ndarray:
        grown = invested ** self.growth
        pooled = graph.sum_facts_by_entry(grown)
        denominator = np.maximum(pooled[graph.fact_entry], 1e-300)
        return invested * grown / denominator
