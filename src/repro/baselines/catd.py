"""CATD — Li et al., VLDB 2014 [23]: confidence-aware truth discovery.

The CRH authors' follow-up work, cited in the paper's introduction,
addresses *long-tail* sources: when a source makes only a handful of
claims, a point estimate of its reliability is wildly uncertain, and
CRH-style weights can over-trust a lucky small source.  CATD replaces
the point estimate with the upper bound of a confidence interval on the
source's error variance:

    w_k = chi^2_{alpha/2, n_k} / sum_i d(v^k_i, v*_i)

where ``n_k`` is the source's claim count and the chi-squared quantile
grows sub-linearly in ``n_k`` — so a source with few observations gets a
deliberately shrunk weight even if those few observations happen to
match the truths, while well-observed sources converge to the CRH-style
inverse-error weight.  Truths are then the weighted mean (continuous) /
weighted vote (categorical) under those weights, iterated like CRH.

This is an *extension* method (not one of the paper's Table 2 baselines)
and therefore not part of ``PAPER_METHOD_ORDER``; it shines exactly
where the deep-web workloads hurt CRH least-covered sources — see
``tests/test_catd.py``.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..core.losses import loss_by_name
from ..core.objective import ConvergenceCriterion
from ..core.result import TruthDiscoveryResult
from ..core.solver import states_to_truth_table
from ..core.initialization import initialize_vote_median
from ..data.schema import PropertyKind
from ..data.table import MultiSourceDataset
from .base import ConflictResolver, register_resolver


@register_resolver
class CATDResolver(ConflictResolver):
    """Confidence-aware truth discovery with chi-squared weight bounds.

    Parameters
    ----------
    alpha:
        Significance level of the variance confidence interval; the
        weight uses the ``alpha / 2`` lower quantile of chi^2 with
        ``n_k`` degrees of freedom (the original paper's suggestion,
        alpha = 0.05).
    max_iterations / tol:
        Iteration control, as in CRH.
    """

    name = "CATD"

    def __init__(self, alpha: float = 0.05, max_iterations: int = 100,
                 tol: float = 1e-6) -> None:
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self.max_iterations = max_iterations
        self.tol = tol

    def _weights(self, sums: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """``chi^2_{alpha/2, n_k} / error_sum_k`` with guards.

        Sources with zero observations get weight 0; perfect sources get
        the weight a tiny floor error implies (finite, dominant).
        """
        quantile = stats.chi2.ppf(self.alpha / 2.0,
                                  df=np.maximum(counts, 1))
        floor = 1e-8 * max(float(sums.max()), 1e-12)
        weights = quantile / np.maximum(sums, floor)
        weights[counts <= 0] = 0.0
        # Normalize for numerical comparability across iterations.
        top = weights.max()
        return weights / top if top > 0 else np.ones_like(weights)

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Iterate chi-squared-bounded weights and weighted truth updates."""
        losses = []
        for prop in dataset.schema:
            if prop.kind is PropertyKind.CONTINUOUS:
                # CATD is formulated on squared errors.
                losses.append(loss_by_name("squared"))
            elif prop.kind is PropertyKind.TEXT:
                losses.append(loss_by_name("edit_distance"))
            else:
                losses.append(loss_by_name("zero_one"))
        columns = initialize_vote_median(dataset)
        states = [
            loss.initial_state(prop, column)
            for loss, prop, column in zip(losses, dataset.properties,
                                          columns)
        ]
        criterion = ConvergenceCriterion(tol=self.tol)
        weights = np.ones(dataset.n_sources)
        converged = False
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            sums = np.zeros(dataset.n_sources)
            counts = np.zeros(dataset.n_sources)
            for loss, prop, state in zip(losses, dataset.properties,
                                         states):
                dev = loss.deviations(state, prop)
                sums += np.nansum(dev, axis=1)
                counts += (~np.isnan(dev)).sum(axis=1)
            weights = self._weights(sums, counts)
            states = [
                loss.update_truth(prop, weights)
                for loss, prop in zip(losses, dataset.properties)
            ]
            objective = float(np.dot(weights, sums))
            if criterion.update(objective):
                converged = True
                break
        truths = states_to_truth_table(dataset, states)
        return TruthDiscoveryResult(
            truths=truths,
            weights=weights,
            source_ids=dataset.source_ids,
            method=self.name,
            iterations=iterations,
            converged=converged,
        )
