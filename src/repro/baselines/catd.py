"""CATD — Li et al., VLDB 2014 [23]: confidence-aware truth discovery.

The CRH authors' follow-up work, cited in the paper's introduction,
addresses *long-tail* sources: when a source makes only a handful of
claims, a point estimate of its reliability is wildly uncertain, and
CRH-style weights can over-trust a lucky small source.  CATD replaces
the point estimate with the upper bound of a confidence interval on the
source's error variance:

    w_k = chi^2_{alpha/2, n_k} / sum_i d(v^k_i, v*_i)

where ``n_k`` is the source's claim count and the chi-squared quantile
grows sub-linearly in ``n_k`` — so a source with few observations gets a
deliberately shrunk weight even if those few observations happen to
match the truths, while well-observed sources converge to the CRH-style
inverse-error weight.  Truths are then the weighted mean (continuous) /
weighted vote (categorical) under those weights, iterated like CRH.

Both halves of the iteration run through the segment kernels via an
:class:`~repro.baselines.execution.ExecutionSession`: the per-source
error sums are :meth:`~repro.baselines.execution.ExecutionSession.per_source`
aggregates (un-normalized), the truth updates are kernel truth steps.
On datasets without text properties every loss is worker/chunk-capable,
so CATD runs natively on all four backends; a text property brings the
``edit_distance`` loss, which has no worker/chunk implementation — the
process and mmap backends then degrade to inline sparse execution with
the refusal traced in the result's ``backend_reason``.

This is an *extension* method (not one of the paper's Table 2 baselines)
and therefore not part of ``PAPER_METHOD_ORDER``; it shines exactly
where the deep-web workloads hurt CRH least-covered sources — see
``tests/test_catd.py``.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..core.initialization import initialize_vote_median
from ..core.losses import loss_by_name
from ..core.objective import ConvergenceCriterion, DeviationOptions
from ..core.result import TruthDiscoveryResult
from ..core.solver import states_to_truth_table
from ..data.schema import PropertyKind
from ..data.table import MultiSourceDataset
from .base import ConflictResolver, register_resolver


def _claim_counts(data) -> np.ndarray:
    """Per-source observation counts across all properties."""
    counts = np.zeros(data.n_sources, dtype=np.float64)
    for prop in data.properties:
        view = prop.claim_view()
        counts += np.bincount(view.source_idx, minlength=data.n_sources)
    return counts


@register_resolver
class CATDResolver(ConflictResolver):
    """Confidence-aware truth discovery with chi-squared weight bounds.

    Parameters
    ----------
    alpha:
        Significance level of the variance confidence interval; the
        weight uses the ``alpha / 2`` lower quantile of chi^2 with
        ``n_k`` degrees of freedom (the original paper's suggestion,
        alpha = 0.05).
    max_iterations / tol:
        Iteration control, as in CRH.
    backend / n_workers / chunk_claims:
        Execution-backend knobs (see :class:`ConflictResolver`).
    """

    name = "CATD"

    def __init__(self, alpha: float = 0.05, max_iterations: int = 100,
                 tol: float = 1e-6, **backend_kwargs) -> None:
        super().__init__(**backend_kwargs)
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self.max_iterations = max_iterations
        self.tol = tol

    def _weights(self, sums: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """``chi^2_{alpha/2, n_k} / error_sum_k`` with guards.

        Sources with zero observations get weight 0; perfect sources get
        the weight a tiny floor error implies (finite, dominant).
        """
        quantile = stats.chi2.ppf(self.alpha / 2.0,
                                  df=np.maximum(counts, 1))
        floor = 1e-8 * max(float(sums.max()), 1e-12)
        weights = quantile / np.maximum(sums, floor)
        weights[counts <= 0] = 0.0
        # Normalize for numerical comparability across iterations.
        top = weights.max()
        return weights / top if top > 0 else np.ones_like(weights)

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Iterate chi-squared-bounded weights and weighted truth updates."""
        session = self._session(dataset)
        try:
            data = session.data
            losses = []
            for prop in data.schema:
                if prop.kind is PropertyKind.CONTINUOUS:
                    # CATD is formulated on squared errors.
                    losses.append(loss_by_name("squared"))
                elif prop.kind is PropertyKind.TEXT:
                    losses.append(loss_by_name("edit_distance"))
                else:
                    losses.append(loss_by_name("zero_one"))
            states = session.initial_states(losses, initialize_vote_median)
            session.start(losses, states)
            counts = _claim_counts(data)
            options = DeviationOptions(normalize_by_counts=False)
            criterion = ConvergenceCriterion(tol=self.tol)
            weights = np.ones(data.n_sources)
            converged = False
            iterations = 0
            for iterations in range(1, self.max_iterations + 1):
                sums = session.per_source(states, options)
                weights = self._weights(sums, counts)
                states = session.truth_step(weights)
                objective = float(np.dot(weights, sums))
                if criterion.update(objective):
                    converged = True
                    break
            truths = states_to_truth_table(data, states)
            return session.stamp(TruthDiscoveryResult(
                truths=truths,
                weights=weights,
                source_ids=data.source_ids,
                method=self.name,
                iterations=iterations,
                converged=converged,
            ))
        finally:
            session.close()
