"""The paper's baseline conflict-resolution methods (Section 3.1.2).

Three families:

* no reliability estimation — :class:`MeanResolver`,
  :class:`MedianResolver` (continuous only), :class:`VotingResolver`
  (categorical only);
* continuous-only truth discovery — :class:`GTMResolver` [14];
* fact-based truth discovery run on heterogeneous data by treating
  continuous observations as facts — :class:`InvestmentResolver` and
  :class:`PooledInvestmentResolver` [9], :class:`TwoEstimatesResolver`
  and :class:`ThreeEstimatesResolver` [5], :class:`TruthFinderResolver`
  [4], :class:`AccuSimResolver` [10].

All are implemented from their original papers with the authors'
suggested parameters and share the :class:`ConflictResolver` interface
— including its execution-backend knobs
(``backend``/``n_workers``/``chunk_claims``): every resolver runs on
every backend, either natively through the segment kernels (CRH,
Mean/Median/Voting, CATD) or inline on the resolved sparse claims with
the degradation reason traced (GTM and the fact-graph methods on
process/mmap).  See ``docs/RESOLVERS.md`` for the full support matrix.
"""

from .accusim import AccuSimResolver
from .catd import CATDResolver
from .base import (
    ConflictResolver,
    available_resolvers,
    register_resolver,
    resolver_by_name,
)
from .claims import ClaimGraph, build_claim_graph, winners_to_truth_table
from .execution import ExecutionSession
from .crh_adapter import CRHResolver
from .estimates import ThreeEstimatesResolver, TwoEstimatesResolver
from .gtm import GTMParams, GTMResolver
from .investment import InvestmentResolver, PooledInvestmentResolver
from .naive import MeanResolver, MedianResolver, VotingResolver
from .truthfinder import TruthFinderResolver

#: Method order of the Table 2 / Table 4 rows.
PAPER_METHOD_ORDER: tuple[str, ...] = (
    "CRH", "Mean", "Median", "GTM", "Voting", "Investment",
    "PooledInvestment", "2-Estimates", "3-Estimates", "TruthFinder",
    "AccuSim",
)

__all__ = [
    "AccuSimResolver",
    "CATDResolver",
    "CRHResolver",
    "ClaimGraph",
    "ConflictResolver",
    "ExecutionSession",
    "GTMParams",
    "GTMResolver",
    "InvestmentResolver",
    "MeanResolver",
    "MedianResolver",
    "PAPER_METHOD_ORDER",
    "PooledInvestmentResolver",
    "ThreeEstimatesResolver",
    "TruthFinderResolver",
    "TwoEstimatesResolver",
    "VotingResolver",
    "available_resolvers",
    "build_claim_graph",
    "register_resolver",
    "resolver_by_name",
    "winners_to_truth_table",
]
