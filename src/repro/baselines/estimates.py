"""2-Estimates and 3-Estimates — Galland et al., WSDM 2010 [5].

Both methods exploit *negative* votes: claiming one fact at an entry is an
implicit vote against the entry's other facts ("there is one and only one
true value for each entry").  They alternate between fact truth estimates
``p_f`` and source error factors ``eps_k``:

* **2-Estimates**: a positive vote from source ``k`` contributes
  ``1 - eps_k`` to ``p_f``; a negative vote contributes ``eps_k``.
  Symmetrically, ``eps_k`` averages ``1 - p_f`` over positive votes and
  ``p_f`` over negative ones.
* **3-Estimates** additionally estimates a per-fact difficulty
  ``theta_f`` ("the difficulty of getting the truth for each entry"):
  votes are discounted by ``eps_k * theta_f``, and a third update step
  estimates difficulty from the residuals.

After each round both methods apply the authors' *linear rescaling*
normalization, mapping the estimate vectors onto [0, 1] — without it the
fixpoint collapses (every estimate drifts to the same value).  Source
error factors are unreliability scores, so Fig. 1 inverts them.

Both methods run on the :class:`~repro.baselines.claims.ClaimGraph`
built from claim views, so dense and sparse backends are bit-identical;
process/mmap requests degrade (traced) to inline sparse execution via
:func:`~repro.baselines.claims.claim_graph_session`.
"""

from __future__ import annotations

import numpy as np

from ..core.result import TruthDiscoveryResult
from ..data.table import MultiSourceDataset
from .base import ConflictResolver, register_resolver
from .claims import ClaimGraph, claim_graph_session, winners_to_truth_table

_EPS = 1e-3  # guards the 3-Estimates divisions by eps/theta


def _rescale(values: np.ndarray) -> np.ndarray:
    """Galland's lambda normalization: min-max map onto [0, 1]."""
    lo, hi = values.min(), values.max()
    if hi - lo <= 0:
        return np.full_like(values, 0.5)
    return (values - lo) / (hi - lo)


class _EstimatesBase(ConflictResolver):
    """Shared fixpoint scaffolding; subclasses define the update rules."""

    scores_are_unreliability = True

    def __init__(self, max_iterations: int = 20, tol: float = 1e-6,
                 **backend_kwargs) -> None:
        super().__init__(**backend_kwargs)
        self.max_iterations = max_iterations
        self.tol = tol

    def _run(self, graph: ClaimGraph) -> tuple[np.ndarray, np.ndarray, int, bool]:
        """Run the truth/error fixpoint; subclass responsibility."""
        raise NotImplementedError

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Run the estimates fixpoint and decode the winning facts."""
        session, graph = claim_graph_session(self, dataset)
        try:
            p, eps, iterations, converged = self._run(graph)
            winners = graph.argmax_fact_per_entry(p)
            truths = winners_to_truth_table(graph, session.data, winners)
            return session.stamp(TruthDiscoveryResult(
                truths=truths,
                weights=eps,  # error factors: lower = more reliable
                source_ids=session.data.source_ids,
                method=self.name,
                iterations=iterations,
                converged=converged,
            ))
        finally:
            session.close()


@register_resolver
class TwoEstimatesResolver(_EstimatesBase):
    """2-Estimates: joint truth/error fixpoint with negative votes."""

    name = "2-Estimates"

    def _run(self, graph: ClaimGraph):
        claimants_per_fact = graph.claimants_per_fact().astype(np.float64)
        claimants_per_entry = np.maximum(
            graph.claimants_per_entry().astype(np.float64), 1.0
        )
        facts_per_entry = graph.facts_per_entry().astype(np.float64)
        eps = np.full(graph.n_sources, 0.4)
        p = np.zeros(graph.n_facts)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # --- truth step -------------------------------------------
            eps_of_claim = eps[graph.claim_source]
            pos_eps = graph.sum_claims_by_fact(eps_of_claim)
            entry_eps = graph.sum_facts_by_entry(pos_eps)
            numerator = (
                (claimants_per_fact - pos_eps)                  # pos: 1-eps
                + (entry_eps[graph.fact_entry] - pos_eps)        # neg: eps
            )
            p = numerator / claimants_per_entry[graph.fact_entry]
            p = _rescale(p)
            # --- error step -------------------------------------------
            p_of_claim = p[graph.claim_fact]
            entry_p = graph.sum_facts_by_entry(p)
            entry_of_claim = graph.fact_entry[graph.claim_fact]
            per_claim_error = (
                (1.0 - p_of_claim)                               # pos vote
                + (entry_p[entry_of_claim] - p_of_claim)        # neg votes
            )
            votes_per_claim = facts_per_entry[entry_of_claim]
            error_sum = graph.sum_claims_by_source(per_claim_error)
            vote_sum = np.maximum(
                graph.sum_claims_by_source(votes_per_claim), 1.0
            )
            new_eps = _rescale(error_sum / vote_sum)
            delta = float(np.abs(new_eps - eps).max())
            eps = new_eps
            if delta < self.tol:
                converged = True
                break
        return p, eps, iterations, converged


@register_resolver
class ThreeEstimatesResolver(_EstimatesBase):
    """3-Estimates: 2-Estimates plus per-fact difficulty estimation."""

    name = "3-Estimates"

    def _run(self, graph: ClaimGraph):
        claimants_per_fact = graph.claimants_per_fact().astype(np.float64)
        claimants_per_entry = np.maximum(
            graph.claimants_per_entry().astype(np.float64), 1.0
        )
        facts_per_entry = graph.facts_per_entry().astype(np.float64)
        entry_of_claim = graph.fact_entry[graph.claim_fact]
        eps = np.full(graph.n_sources, 0.4)
        theta = np.full(graph.n_facts, 0.5)
        p = np.zeros(graph.n_facts)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # --- truth step: votes discounted by eps * theta -----------
            eps_of_claim = eps[graph.claim_source]
            pos_eps = graph.sum_claims_by_fact(eps_of_claim)
            entry_eps = graph.sum_facts_by_entry(pos_eps)
            numerator = (
                (claimants_per_fact - theta * pos_eps)
                + theta * (entry_eps[graph.fact_entry] - pos_eps)
            )
            p = _rescale(numerator / claimants_per_entry[graph.fact_entry])
            # --- error step: residuals scaled by 1/theta ---------------
            safe_theta = np.maximum(theta, _EPS)
            q = p / safe_theta                        # neg-vote residual
            r = (1.0 - p) / safe_theta                # pos-vote residual
            entry_q = graph.sum_facts_by_entry(q)
            per_claim_error = (
                r[graph.claim_fact]
                + (entry_q[entry_of_claim] - q[graph.claim_fact])
            )
            votes_per_claim = facts_per_entry[entry_of_claim]
            error_sum = graph.sum_claims_by_source(per_claim_error)
            vote_sum = np.maximum(
                graph.sum_claims_by_source(votes_per_claim), 1.0
            )
            new_eps = _rescale(error_sum / vote_sum)
            # --- difficulty step: residuals scaled by 1/eps ------------
            safe_eps = np.maximum(new_eps, _EPS)
            inv_eps_of_claim = 1.0 / safe_eps[graph.claim_source]
            pos_inv = graph.sum_claims_by_fact(inv_eps_of_claim)
            entry_inv = graph.sum_facts_by_entry(pos_inv)
            theta_num = (
                (1.0 - p) * pos_inv
                + p * (entry_inv[graph.fact_entry] - pos_inv)
            )
            theta = _rescale(
                theta_num / claimants_per_entry[graph.fact_entry]
            )
            delta = float(np.abs(new_eps - eps).max())
            eps = new_eps
            if delta < self.tol:
                converged = True
                break
        return p, eps, iterations, converged
