"""Adapter exposing the CRH solver through the resolver interface,
so the experiment harness treats it like any other method column."""

from __future__ import annotations

from ..core.result import TruthDiscoveryResult
from ..core.solver import CRHConfig, CRHSolver
from ..data.table import MultiSourceDataset
from .base import ConflictResolver, register_resolver


@register_resolver
class CRHResolver(ConflictResolver):
    """CRH with the paper's default configuration (Section 3.1.2).

    Backend knobs passed through the resolver interface
    (``backend``/``n_workers``/``chunk_claims``) override the
    corresponding :class:`~repro.core.solver.CRHConfig` fields, so
    ``resolver_by_name("CRH", backend="process")`` behaves exactly like
    ``crh(dataset, backend="process")`` — native execution on all four
    backends, with the solver's own degradation tracing.
    """

    name = "CRH"

    def __init__(self, config: CRHConfig | None = None,
                 **backend_kwargs) -> None:
        super().__init__(**backend_kwargs)
        config = config or CRHConfig()
        overrides = {}
        if self.backend != "auto":
            overrides["backend"] = self.backend
        if self.n_workers is not None:
            overrides["n_workers"] = self.n_workers
        if self.chunk_claims is not None:
            overrides["chunk_claims"] = self.chunk_claims
        self.config = config.with_(**overrides) if overrides else config

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Run the CRH solver under this resolver's configuration."""
        return CRHSolver(self.config).fit(dataset)
