"""Adapter exposing the CRH solver through the resolver interface,
so the experiment harness treats it like any other method column."""

from __future__ import annotations

from ..core.result import TruthDiscoveryResult
from ..core.solver import CRHConfig, CRHSolver
from ..data.table import MultiSourceDataset
from .base import ConflictResolver, register_resolver


@register_resolver
class CRHResolver(ConflictResolver):
    """CRH with the paper's default configuration (Section 3.1.2)."""

    name = "CRH"

    def __init__(self, config: CRHConfig | None = None) -> None:
        self.config = config or CRHConfig()

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        return CRHSolver(self.config).fit(dataset)
