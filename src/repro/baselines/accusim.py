"""AccuSim — Dong, Berti-Equille & Srivastava, VLDB 2009 [10].

The ACCU family's Bayesian analysis: a source with accuracy ``A_k`` casts
a vote of strength ``ln(n * A_k / (1 - A_k))`` for each value it claims
(``n`` is the assumed number of wrong values in each entry's domain), and
a value's posterior probability is the softmax of its accumulated vote
count over the entry's candidate values — claiming one value implicitly
votes against the entry's others (the *complement vote* shared with
2-Estimates).  AccuSim extends ACCU by letting similar values reinforce
each other before the softmax, using the same similarity function as
TruthFinder for continuous claims.

Source-dependency detection (AccuCopy etc. from the same paper) is out of
scope, exactly as Section 3.1.2 states ("we do not consider source
dependency in this paper").

Runs on the :class:`~repro.baselines.claims.ClaimGraph` built from
claim views, so dense and sparse backends are bit-identical;
process/mmap requests degrade (traced) to inline sparse execution via
:func:`~repro.baselines.claims.claim_graph_session`.
"""

from __future__ import annotations

import numpy as np

from ..core.result import TruthDiscoveryResult
from ..data.table import MultiSourceDataset
from .base import ConflictResolver, register_resolver
from .claims import ClaimGraph, claim_graph_session, winners_to_truth_table

_ACC_FLOOR = 1e-3
_ACC_CEIL = 1.0 - 1e-3


def _entry_softmax(graph: ClaimGraph, scores: np.ndarray) -> np.ndarray:
    """Softmax of fact scores within every entry, numerically stable."""
    entry_max = np.full(graph.n_entries, -np.inf)
    np.maximum.at(entry_max, graph.fact_entry, scores)
    shifted = np.exp(scores - entry_max[graph.fact_entry])
    denominator = graph.sum_facts_by_entry(shifted)
    return shifted / denominator[graph.fact_entry]


@register_resolver
class AccuSimResolver(ConflictResolver):
    """AccuSim with the original paper's parameter suggestions."""

    name = "AccuSim"

    def __init__(
        self,
        n_false_values: int = 10,
        rho: float = 0.5,
        initial_accuracy: float = 0.8,
        max_iterations: int = 20,
        tol: float = 1e-4,
        **backend_kwargs,
    ) -> None:
        super().__init__(**backend_kwargs)
        if n_false_values < 1:
            raise ValueError("n_false_values must be >= 1")
        if not 0 <= rho <= 1:
            raise ValueError("rho must be in [0, 1]")
        if not 0 < initial_accuracy < 1:
            raise ValueError("initial_accuracy must be in (0, 1)")
        self.n_false_values = n_false_values
        self.rho = rho
        self.initial_accuracy = initial_accuracy
        self.max_iterations = max_iterations
        self.tol = tol

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Iterate accuracy-weighted votes with similarity reinforcement."""
        session, graph = claim_graph_session(self, dataset)
        try:
            return session.stamp(self._fit_graph(session.data, graph))
        finally:
            session.close()

    def _fit_graph(self, data, graph: ClaimGraph) -> TruthDiscoveryResult:
        claims_per_source = np.maximum(graph.claims_per_source(), 1)
        accuracy = np.full(graph.n_sources, self.initial_accuracy)
        probability = np.zeros(graph.n_facts)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            clipped = np.clip(accuracy, _ACC_FLOOR, _ACC_CEIL)
            tau = np.log(self.n_false_values * clipped / (1.0 - clipped))
            vote_count = graph.sum_claims_by_fact(tau[graph.claim_source])
            # Similar continuous values reinforce each other's vote count.
            adjusted = vote_count + self.rho * graph.entry_similarity_sums(
                vote_count
            )
            probability = _entry_softmax(graph, adjusted)
            new_accuracy = (
                graph.sum_claims_by_source(probability[graph.claim_fact])
                / claims_per_source
            )
            delta = float(np.abs(new_accuracy - accuracy).max())
            accuracy = new_accuracy
            if delta < self.tol:
                converged = True
                break
        winners = graph.argmax_fact_per_entry(probability)
        truths = winners_to_truth_table(graph, data, winners)
        return TruthDiscoveryResult(
            truths=truths,
            weights=accuracy,
            source_ids=data.source_ids,
            method=self.name,
            iterations=iterations,
            converged=converged,
        )
