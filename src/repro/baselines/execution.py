"""Backend execution session shared by the baseline resolvers.

The CRH solver resolves its input through
:func:`repro.engine.make_backend`, arms the backend's runner when one
exists, and degrades to inline sparse execution when the runner cannot
serve the configured losses.  Every baseline resolver needs the same
choreography, so this module packages it once:
:class:`ExecutionSession` owns the resolved backend, exposes
kernel-level ``truth_step``/``per_source`` calls that transparently use
the parallel runner when it is live, and records which backend actually
completed the run (plus why) for the result's
``backend``/``backend_reason`` fields.

Degradation has two entry points:

* :meth:`ExecutionSession.start` — the runner refuses the loss plan
  (e.g. a text ``edit_distance`` loss on the process backend) or fails
  mid-run; the session finishes inline on the sparse claim storage,
  exactly like :class:`~repro.core.solver.CRHSolver`.
* :meth:`ExecutionSession.require_inline` — the *method* has no
  kernel-step formulation at all (GTM's Bayesian variance updates, the
  fact-graph baselines); a parallel backend request is honored as
  storage but executed inline, with the documented reason traced.

Both paths leave ``backend_name == "sparse"`` and a human-readable
``backend_reason``, which ``docs/RESOLVERS.md`` documents per resolver.
"""

from __future__ import annotations

import numpy as np

from ..core import dispatch
from ..core.losses import Loss, TruthState
from ..core.objective import DeviationOptions, per_source_deviations
from ..engine import BackendExecutionError, make_backend


class ExecutionSession:
    """One resolver run's view of an execution backend.

    Parameters
    ----------
    data:
        A dense :class:`~repro.data.table.MultiSourceDataset`, a sparse
        :class:`~repro.data.claims_matrix.ClaimsMatrix`, or an
        already-built backend.
    backend / n_workers / chunk_claims:
        Forwarded to :func:`repro.engine.make_backend`; the same knobs
        :class:`~repro.core.solver.CRHConfig` exposes.
    kernel_tier:
        Kernel-tier request resolved through
        :func:`repro.core.dispatch.resolve_kernel_tier` at construction;
        the session activates the resolved tier around every inline
        step and forwards it to the backend's parallel runner.

    Attributes
    ----------
    backend_name / backend_reason:
        The backend that is (or will be) *completing* the run and why —
        initially the resolution of :func:`~repro.engine.make_backend`,
        rewritten to ``("sparse", <cause>)`` on degradation.  Resolvers
        copy them onto their result via :meth:`stamp`.
    kernel_tier / kernel_tier_reason:
        The resolved tier (``"numpy"``/``"numba"``) and the reason for
        the resolution (request, session default, auto preference, or
        the NumPy-fallback cause).
    """

    def __init__(self, data, backend: str = "auto", *,
                 n_workers: int | None = None,
                 chunk_claims: int | None = None,
                 kernel_tier: str = "auto") -> None:
        built = make_backend(data, backend, n_workers=n_workers,
                             chunk_claims=chunk_claims)
        self._backend = built
        self._owns = built is not data
        self._runner = None
        self._losses: list[Loss] | None = None
        self.backend_name: str = built.name
        self.backend_reason: str = built.resolution
        #: resolved kernel tier (``numpy``/``numba``) + the reason —
        #: every session step activates it, inline and runner-served alike
        self.kernel_tier, self.kernel_tier_reason = (
            dispatch.resolve_kernel_tier(kernel_tier))

    # ------------------------------------------------------------------
    @property
    def data(self):
        """The wrapped dataset (dense table or sparse claims matrix)."""
        return self._backend.data

    @property
    def degraded(self) -> bool:
        """Whether the session fell back to inline sparse execution."""
        return self.backend_name != self._backend.name

    @property
    def runner_live(self) -> bool:
        """Whether a parallel runner is currently serving the steps."""
        return self._runner is not None

    # ------------------------------------------------------------------
    def initial_states(self, losses: list[Loss],
                       initializer) -> list[TruthState]:
        """Initializer columns wrapped into per-property loss states.

        Uses the backend's chunked ``initial_columns`` hook when one
        exists (the mmap backend), so out-of-core datasets never
        materialize full claim columns during initialization — exactly
        the solver's behavior.
        """
        self._losses = list(losses)
        hook = getattr(self._backend, "initial_columns", None)
        columns = (hook(initializer) if hook is not None
                   else initializer(self.data))
        return [
            loss.initial_state(prop, column)
            for loss, prop, column in zip(losses, self.data.properties,
                                          columns)
        ]

    def start(self, losses: list[Loss],
              states: list[TruthState] | None = None,
              profiler=None) -> None:
        """Arm the backend's parallel runner for ``losses``, if any.

        Dense and sparse backends have no runner — the session simply
        executes inline.  A process/mmap runner that refuses the loss
        plan (a loss outside ``WORKER_LOSSES``/``CHUNK_LOSSES``) or
        fails during setup degrades the session with the cause recorded
        in :attr:`backend_reason`.
        """
        self._losses = list(losses)
        if not getattr(self._backend, "supports_runner", False):
            return
        try:
            runner = self._backend.start_runner(
                losses, profiler=profiler, kernel_tier=self.kernel_tier)
            if states is not None:
                runner.seed(states)
            self._runner = runner
        except BackendExecutionError as error:
            self._degrade(
                f"{self._backend.name} backend degraded to inline "
                f"sparse execution: {error}"
            )

    def require_inline(self, why: str) -> None:
        """Declare that this method has no runner-step formulation.

        On a parallel backend (process/mmap) the session degrades
        immediately — storage resolution still happened, but the math
        runs inline on the sparse claims and the result says so.  Dense
        and sparse backends are unaffected.
        """
        if getattr(self._backend, "supports_runner", False):
            self._degrade(
                f"{self._backend.name} backend degraded to inline "
                f"sparse execution: {why}"
            )

    def _degrade(self, reason: str) -> None:
        self._runner = None
        self.backend_name = "sparse"
        self.backend_reason = reason
        closer = getattr(self._backend, "close", None)
        if closer is not None:
            closer()

    # ------------------------------------------------------------------
    def truth_step(self, weights: np.ndarray) -> list[TruthState]:
        """One truth step under ``weights`` — parallel when possible.

        Falls back to the inline per-property ``update_truth`` loop when
        no runner is live, or mid-run when the runner dies (the failure
        is traced into :attr:`backend_reason`).  Both paths produce
        bit-identical states for kernel-native losses.
        """
        if self._runner is not None:
            try:
                return self._runner.truth_step(weights)
            except BackendExecutionError as error:
                self._degrade(
                    f"{self._backend.name} backend failed mid-run; "
                    f"finishing inline on sparse claims: {error}"
                )
        with dispatch.activate_tier(self.kernel_tier):
            return [
                loss.update_truth(prop, weights)
                for loss, prop in zip(self._losses, self.data.properties)
            ]

    def per_source(self, states: list[TruthState],
                   options: DeviationOptions = DeviationOptions(),
                   ) -> np.ndarray:
        """Per-source aggregate deviations of ``states`` (Eq. 2's input).

        Same runner-first / inline-fallback contract as
        :meth:`truth_step`.
        """
        if self._runner is not None:
            try:
                return self._runner.per_source(states, options)
            except BackendExecutionError as error:
                self._degrade(
                    f"{self._backend.name} backend failed mid-run; "
                    f"finishing inline on sparse claims: {error}"
                )
        with dispatch.activate_tier(self.kernel_tier):
            return per_source_deviations(self.data, self._losses, states,
                                         options)

    # ------------------------------------------------------------------
    def stamp(self, result):
        """Record the completing backend and reason on ``result``."""
        result.backend = self.backend_name
        result.backend_reason = self.backend_reason
        return result

    def close(self) -> None:
        """Tear down a session-owned backend (idempotent)."""
        if self._owns:
            closer = getattr(self._backend, "close", None)
            if closer is not None:
                closer()
