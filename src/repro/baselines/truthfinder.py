"""TruthFinder — Yin, Han & Yu, KDD 2007 [4].

Bayesian-flavored iterative trust propagation: a source's trustworthiness
``t_k`` is the expected confidence of the facts it claims; a fact's
confidence is derived from the trust of its claimants, combined in log
space ("tau scores") so independent supporters compound.  Influence
*between* facts of the same entry enters through an implication function:
for continuous values, nearby claims boost each other
(``imp = exp(-|v - v'| / scale)``); distinct categorical values do not
imply each other.  A dampening factor ``gamma`` compensates for
non-independent sources, and the logistic link keeps confidences in
(0, 1).

Parameter defaults follow the original paper: ``gamma = 0.3``,
``rho = 0.5``, initial trust 0.9, convergence on the change in the trust
vector.

Runs on the :class:`~repro.baselines.claims.ClaimGraph` built from
claim views, so dense and sparse backends are bit-identical;
process/mmap requests degrade (traced) to inline sparse execution via
:func:`~repro.baselines.claims.claim_graph_session`.
"""

from __future__ import annotations

import numpy as np

from ..core.result import TruthDiscoveryResult
from ..data.table import MultiSourceDataset
from .base import ConflictResolver, register_resolver
from .claims import claim_graph_session, winners_to_truth_table

_MAX_TRUST = 1.0 - 1e-6


@register_resolver
class TruthFinderResolver(ConflictResolver):
    """TruthFinder with the original paper's parameter suggestions."""

    name = "TruthFinder"

    def __init__(
        self,
        gamma: float = 0.3,
        rho: float = 0.5,
        initial_trust: float = 0.9,
        max_iterations: int = 20,
        tol: float = 1e-4,
        **backend_kwargs,
    ) -> None:
        super().__init__(**backend_kwargs)
        if not 0 < gamma:
            raise ValueError("gamma must be positive")
        if not 0 <= rho <= 1:
            raise ValueError("rho must be in [0, 1]")
        if not 0 < initial_trust < 1:
            raise ValueError("initial_trust must be in (0, 1)")
        self.gamma = gamma
        self.rho = rho
        self.initial_trust = initial_trust
        self.max_iterations = max_iterations
        self.tol = tol

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Iterate trust propagation with inter-fact implications."""
        session, graph = claim_graph_session(self, dataset)
        try:
            return session.stamp(self._fit_graph(session.data, graph))
        finally:
            session.close()

    def _fit_graph(self, data, graph) -> TruthDiscoveryResult:
        claims_per_source = np.maximum(graph.claims_per_source(), 1)
        trust = np.full(graph.n_sources, self.initial_trust)
        confidence = np.zeros(graph.n_facts)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # tau: trust in log space; compounding over claimants.
            tau = -np.log1p(-np.minimum(trust, _MAX_TRUST))
            sigma = graph.sum_claims_by_fact(tau[graph.claim_source])
            # Implication from same-entry facts (continuous only).
            sigma_star = sigma + self.rho * graph.entry_similarity_sums(sigma)
            confidence = 1.0 / (1.0 + np.exp(-self.gamma * sigma_star))
            new_trust = (
                graph.sum_claims_by_source(confidence[graph.claim_fact])
                / claims_per_source
            )
            delta = float(np.abs(new_trust - trust).max())
            trust = new_trust
            if delta < self.tol:
                converged = True
                break
        winners = graph.argmax_fact_per_entry(confidence)
        truths = winners_to_truth_table(graph, data, winners)
        return TruthDiscoveryResult(
            truths=truths,
            weights=trust,
            source_ids=data.source_ids,
            method=self.name,
            iterations=iterations,
            converged=converged,
        )
