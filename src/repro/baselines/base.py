"""Common interface and registry for conflict-resolution methods.

Every baseline (and CRH itself, through an adapter) implements
:class:`ConflictResolver`, so the experiment harness can run the whole
Table 2 / Table 4 method column uniformly.
"""

from __future__ import annotations

import abc
import time

from ..data.schema import PropertyKind
from ..data.table import MultiSourceDataset
from ..core.result import TruthDiscoveryResult


class ConflictResolver(abc.ABC):
    """A conflict-resolution method mapping a dataset to truths + weights."""

    #: registry key and display name, e.g. ``"TruthFinder"``
    name: str
    #: the property kinds this method can resolve; single-type methods
    #: (Mean, Median, GTM, Voting) ignore the other kind, as in the paper.
    handles: frozenset[PropertyKind] = frozenset(
        (PropertyKind.CATEGORICAL, PropertyKind.CONTINUOUS,
         PropertyKind.TEXT)
    )
    #: True when the method's reliability scores measure *unreliability*
    #: (GTM's variances, 3-Estimates' error factors) and must be inverted
    #: before the Fig. 1 comparison.
    scores_are_unreliability: bool = False

    @abc.abstractmethod
    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Resolve conflicts in ``dataset``."""

    def fit_timed(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Like :meth:`fit` but stamps wall-clock time on the result."""
        started = time.perf_counter()
        result = self.fit(dataset)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def handles_kind(self, kind: PropertyKind) -> bool:
        """Whether this method resolves properties of ``kind``."""
        return kind in self.handles

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_RESOLVERS: dict[str, type[ConflictResolver]] = {}


def register_resolver(cls: type[ConflictResolver]) -> type[ConflictResolver]:
    """Class decorator adding a resolver to the registry."""
    if not getattr(cls, "name", None):
        raise ValueError("resolver class must define a non-empty `name`")
    if cls.name in _RESOLVERS:
        raise ValueError(f"resolver {cls.name!r} is already registered")
    _RESOLVERS[cls.name] = cls
    return cls


def resolver_by_name(name: str, **kwargs) -> ConflictResolver:
    """Instantiate a registered resolver by display name."""
    try:
        return _RESOLVERS[name](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown resolver {name!r}; registered: {available_resolvers()}"
        ) from None


def available_resolvers() -> tuple[str, ...]:
    """Registered resolver names, sorted."""
    return tuple(sorted(_RESOLVERS))
