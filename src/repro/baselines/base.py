"""Common interface and registry for conflict-resolution methods.

Every baseline (and CRH itself, through an adapter) implements
:class:`ConflictResolver`, so the experiment harness can run the whole
Table 2 / Table 4 method column uniformly.  Every resolver also accepts
the execution-backend knobs (``backend``/``n_workers``/``chunk_claims``)
and reports which backend completed the run on its result — see
:mod:`repro.baselines.execution` and ``docs/RESOLVERS.md`` for the
support matrix.
"""

from __future__ import annotations

import abc
import time

from ..core.dispatch import KERNEL_TIER_NAMES
from ..core.result import TruthDiscoveryResult
from ..data.schema import PropertyKind
from ..data.table import MultiSourceDataset
from ..engine import BACKEND_NAMES
from .execution import ExecutionSession


class ConflictResolver(abc.ABC):
    """A conflict-resolution method mapping a dataset to truths + weights.

    Parameters
    ----------
    backend:
        Execution backend name (``"auto"``, ``"dense"``, ``"sparse"``,
        ``"process"``, ``"mmap"``) resolved through
        :func:`repro.engine.make_backend`.  Methods whose math has no
        worker/chunk formulation run inline on a parallel backend's
        sparse claims, recording why in the result's
        ``backend_reason`` (see ``docs/RESOLVERS.md``).
    n_workers:
        Worker count for the process backend; ignored elsewhere.
    chunk_claims:
        Claims per chunk for the mmap backend; ignored elsewhere.
    kernel_tier:
        Segment-kernel implementation tier (``"auto"``, ``"numpy"``,
        ``"numba"``) the execution session resolves and activates; a
        ``numba`` request without a working numba falls back to NumPy
        with the cause recorded on the session.  Bit-identical either
        way.
    """

    #: registry key and display name, e.g. ``"TruthFinder"``
    name: str
    #: the property kinds this method can resolve; single-type methods
    #: (Mean, Median, GTM, Voting) ignore the other kind, as in the paper.
    handles: frozenset[PropertyKind] = frozenset(
        (PropertyKind.CATEGORICAL, PropertyKind.CONTINUOUS,
         PropertyKind.TEXT)
    )
    #: True when the method's reliability scores measure *unreliability*
    #: (GTM's variances, 3-Estimates' error factors) and must be inverted
    #: before the Fig. 1 comparison.
    scores_are_unreliability: bool = False

    def __init__(self, *, backend: str = "auto",
                 n_workers: int | None = None,
                 chunk_claims: int | None = None,
                 kernel_tier: str = "auto") -> None:
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, got {backend!r}"
            )
        if kernel_tier not in KERNEL_TIER_NAMES:
            raise ValueError(
                f"kernel_tier must be one of {KERNEL_TIER_NAMES}, "
                f"got {kernel_tier!r}"
            )
        self.backend = backend
        self.n_workers = n_workers
        self.chunk_claims = chunk_claims
        self.kernel_tier = kernel_tier

    def _session(self, dataset) -> ExecutionSession:
        """Resolve ``dataset`` through this resolver's backend knobs."""
        return ExecutionSession(dataset, self.backend,
                                n_workers=self.n_workers,
                                chunk_claims=self.chunk_claims,
                                kernel_tier=self.kernel_tier)

    @abc.abstractmethod
    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Resolve conflicts in ``dataset``."""

    def fit_timed(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Like :meth:`fit` but stamps wall-clock time on the result."""
        started = time.perf_counter()
        result = self.fit(dataset)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def handles_kind(self, kind: PropertyKind) -> bool:
        """Whether this method resolves properties of ``kind``."""
        return kind in self.handles

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_RESOLVERS: dict[str, type[ConflictResolver]] = {}


def register_resolver(cls: type[ConflictResolver]) -> type[ConflictResolver]:
    """Class decorator adding a resolver to the registry."""
    if not getattr(cls, "name", None):
        raise ValueError("resolver class must define a non-empty `name`")
    if cls.name in _RESOLVERS:
        raise ValueError(f"resolver {cls.name!r} is already registered")
    _RESOLVERS[cls.name] = cls
    return cls


def resolver_by_name(name: str, **kwargs) -> ConflictResolver:
    """Instantiate a registered resolver by display name.

    ``kwargs`` are forwarded to the resolver's constructor — every
    resolver uniformly accepts the execution knobs
    (``backend``/``n_workers``/``chunk_claims``/``kernel_tier``)
    alongside its own
    parameters.  An unknown ``name`` raises :class:`KeyError` listing
    the valid names; constructor errors (e.g. an invalid parameter
    value) propagate unchanged instead of being misreported as an
    unknown resolver.
    """
    try:
        cls = _RESOLVERS[name]
    except KeyError:
        raise KeyError(
            f"unknown resolver {name!r}; registered: {available_resolvers()}"
        ) from None
    return cls(**kwargs)


def available_resolvers() -> tuple[str, ...]:
    """Registered resolver names, sorted."""
    return tuple(sorted(_RESOLVERS))
