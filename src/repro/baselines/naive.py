"""Voting/Averaging baselines without source-reliability estimation.

These are the traditional conflict-resolution methods of Section 3.1.2:
Mean and Median on continuous properties, majority Voting on categorical
properties.  They weight every source equally (uniform weights are what
their results report), which is exactly the assumption the paper's
reliability-aware methods relax.
"""

from __future__ import annotations

import numpy as np

from ..core.result import TruthDiscoveryResult
from ..core.weighted_stats import (
    weighted_mean_columns,
    weighted_median_columns,
    weighted_vote_columns,
)
from ..data.encoding import MISSING_CODE
from ..data.schema import PropertyKind
from ..data.table import MultiSourceDataset, TruthTable
from .base import ConflictResolver, register_resolver


def _empty_columns(dataset: MultiSourceDataset) -> list[np.ndarray]:
    columns: list[np.ndarray] = []
    for prop in dataset.schema:
        if prop.uses_codec:
            columns.append(
                np.full(dataset.n_objects, MISSING_CODE, dtype=np.int32)
            )
        else:
            columns.append(np.full(dataset.n_objects, np.nan))
    return columns


def _result(dataset: MultiSourceDataset, columns: list[np.ndarray],
            method: str) -> TruthDiscoveryResult:
    truths = TruthTable(
        schema=dataset.schema,
        object_ids=dataset.object_ids,
        columns=columns,
        codecs=dataset.codecs(),
    )
    return TruthDiscoveryResult(
        truths=truths,
        weights=np.ones(dataset.n_sources),
        source_ids=dataset.source_ids,
        method=method,
        iterations=0,
        converged=True,
    )


@register_resolver
class MeanResolver(ConflictResolver):
    """Per-entry mean of the observations (continuous properties only)."""

    name = "Mean"
    handles = frozenset((PropertyKind.CONTINUOUS,))

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        columns = _empty_columns(dataset)
        uniform = np.ones(dataset.n_sources)
        for m, prop in enumerate(dataset.properties):
            if prop.schema.is_continuous:
                columns[m] = weighted_mean_columns(prop.values, uniform)
        return _result(dataset, columns, self.name)


@register_resolver
class MedianResolver(ConflictResolver):
    """Per-entry median of the observations (continuous properties only)."""

    name = "Median"
    handles = frozenset((PropertyKind.CONTINUOUS,))

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        columns = _empty_columns(dataset)
        uniform = np.ones(dataset.n_sources)
        for m, prop in enumerate(dataset.properties):
            if prop.schema.is_continuous:
                columns[m] = weighted_median_columns(prop.values, uniform)
        return _result(dataset, columns, self.name)


@register_resolver
class VotingResolver(ConflictResolver):
    """Per-entry majority vote (categorical properties only)."""

    name = "Voting"
    handles = frozenset((PropertyKind.CATEGORICAL, PropertyKind.TEXT))

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        columns = _empty_columns(dataset)
        uniform = np.ones(dataset.n_sources)
        for m, prop in enumerate(dataset.properties):
            if prop.schema.uses_codec:
                columns[m] = weighted_vote_columns(
                    prop.values, uniform, n_categories=len(prop.codec)
                )
        return _result(dataset, columns, self.name)
