"""Voting/Averaging baselines without source-reliability estimation.

These are the traditional conflict-resolution methods of Section 3.1.2:
Mean and Median on continuous properties, majority Voting on categorical
properties.  They weight every source equally (uniform weights are what
their results report), which is exactly the assumption the paper's
reliability-aware methods relax.

Each is one uniform-weight truth step of the corresponding CRH loss —
Mean is ``squared``'s weighted mean (Eq. 14), Median is ``absolute``'s
weighted median (Eq. 16), Voting is ``zero_one``'s weighted vote (Eq. 9)
— evaluated through the segment kernels of :mod:`repro.core.kernels` via
an :class:`~repro.baselines.execution.ExecutionSession`.  All three
therefore run natively (bit-identically) on every execution backend:
dense, sparse, process, and mmap.
"""

from __future__ import annotations

import numpy as np

from ..core.initialization import initialize_vote_median
from ..core.losses import loss_by_name
from ..core.result import TruthDiscoveryResult
from ..data.encoding import MISSING_CODE
from ..data.schema import PropertyKind
from ..data.table import MultiSourceDataset, TruthTable
from .base import ConflictResolver, register_resolver


def _one_shot_fit(resolver: ConflictResolver,
                  dataset: MultiSourceDataset,
                  loss_of_kind: dict[PropertyKind, str]) -> TruthDiscoveryResult:
    """One uniform-weight truth step over the kernels, per property kind.

    Properties of a kind the resolver does not handle still need a
    kernel-capable placeholder loss so a parallel runner's plan stays
    valid (the runner evaluates every property); their computed columns
    are discarded and replaced with missing-value placeholders, exactly
    matching the single-type semantics of the paper's Table 2.
    """
    session = resolver._session(dataset)
    try:
        data = session.data
        losses = []
        handled = []
        for prop in data.schema:
            name = loss_of_kind.get(prop.kind)
            handled.append(name is not None)
            if name is None:
                name = "zero_one" if prop.uses_codec else "squared"
            losses.append(loss_by_name(name))
        states = session.initial_states(losses, initialize_vote_median)
        session.start(losses, states)
        uniform = np.ones(data.n_sources, dtype=np.float64)
        states = session.truth_step(uniform)
        columns: list[np.ndarray] = []
        for prop, state, is_handled in zip(data.schema, states, handled):
            if not is_handled:
                if prop.uses_codec:
                    columns.append(np.full(data.n_objects, MISSING_CODE,
                                           dtype=np.int32))
                else:
                    columns.append(np.full(data.n_objects, np.nan))
            elif prop.uses_codec:
                columns.append(np.asarray(state.column, dtype=np.int32))
            else:
                columns.append(np.asarray(state.column, dtype=np.float64))
        truths = TruthTable(
            schema=data.schema,
            object_ids=data.object_ids,
            columns=columns,
            codecs=data.codecs(),
        )
        return session.stamp(TruthDiscoveryResult(
            truths=truths,
            weights=uniform,
            source_ids=data.source_ids,
            method=resolver.name,
            iterations=0,
            converged=True,
        ))
    finally:
        session.close()


@register_resolver
class MeanResolver(ConflictResolver):
    """Per-entry mean of the observations (continuous properties only).

    One uniform-weight :func:`~repro.core.kernels.segment_weighted_mean`
    truth step (the ``squared`` loss's Eq. 14 update); runs natively on
    all four backends.
    """

    name = "Mean"
    handles = frozenset((PropertyKind.CONTINUOUS,))

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Average every entry's claims with uniform weights."""
        return _one_shot_fit(self, dataset,
                             {PropertyKind.CONTINUOUS: "squared"})


@register_resolver
class MedianResolver(ConflictResolver):
    """Per-entry median of the observations (continuous properties only).

    One uniform-weight
    :func:`~repro.core.kernels.segment_weighted_median` truth step (the
    ``absolute`` loss's Eq. 16 update); runs natively on all four
    backends.
    """

    name = "Median"
    handles = frozenset((PropertyKind.CONTINUOUS,))

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Take every entry's uniform-weight median claim."""
        return _one_shot_fit(self, dataset,
                             {PropertyKind.CONTINUOUS: "absolute"})


@register_resolver
class VotingResolver(ConflictResolver):
    """Per-entry majority vote (categorical/text properties only).

    One uniform-weight :func:`~repro.core.kernels.segment_weighted_vote`
    truth step (the ``zero_one`` loss's Eq. 9 update); runs natively on
    all four backends.
    """

    name = "Voting"
    handles = frozenset((PropertyKind.CATEGORICAL, PropertyKind.TEXT))

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Pick every entry's most-claimed value code."""
        return _one_shot_fit(self, dataset, {
            PropertyKind.CATEGORICAL: "zero_one",
            PropertyKind.TEXT: "zero_one",
        })
