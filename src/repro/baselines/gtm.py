"""Gaussian Truth Model (GTM) — Zhao & Han, QDB 2012 [14].

A Bayesian probabilistic truth-discovery model for *continuous* data: each
entry has a latent Gaussian truth ``mu_e``, each source a latent variance
``sigma_k^2`` with an inverse-Gamma prior, and observations are
``v_ek ~ N(mu_e, sigma_k^2)``.  Following the original paper we run
coordinate-ascent MAP inference on per-entry z-score-normalized values
(their preprocessing step), alternating:

* truth update — precision-weighted posterior mean of the claims,
  shrunk toward the prior mean;
* source-variance update — MAP of the inverse-Gamma posterior given the
  source's squared residuals.

Categorical properties are ignored (the method is continuous-only, which
is why Table 2 reports "NA" for its Error Rate); the reliability score
reported per source is its estimated *precision* ``1 / sigma_k^2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import TruthDiscoveryResult
from ..core.weighted_stats import column_std, weighted_mean_columns
from ..data.encoding import MISSING_CODE
from ..data.schema import PropertyKind
from ..data.table import MultiSourceDataset, TruthTable
from .base import ConflictResolver, register_resolver


@dataclass(frozen=True)
class GTMParams:
    """Hyper-parameters, defaulting to the original paper's suggestions."""

    #: inverse-Gamma prior on source variances
    alpha: float = 10.0
    beta: float = 10.0
    #: Gaussian prior on (normalized) truths
    mu0: float = 0.0
    sigma0_sq: float = 1.0
    max_iterations: int = 50
    tol: float = 1e-8

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0 or self.sigma0_sq <= 0:
            raise ValueError("alpha, beta and sigma0_sq must be positive")


@register_resolver
class GTMResolver(ConflictResolver):
    """Gaussian Truth Model for continuous properties."""

    name = "GTM"
    handles = frozenset((PropertyKind.CONTINUOUS,))
    scores_are_unreliability = False  # we report precision = reliability

    def __init__(self, params: GTMParams | None = None) -> None:
        self.params = params or GTMParams()

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        params = self.params
        k = dataset.n_sources

        # --- preprocessing: z-score every entry across its claims --------
        normalized: list[np.ndarray] = []
        centers: list[np.ndarray] = []
        scales: list[np.ndarray] = []
        continuous_indices: list[int] = []
        for m, prop in enumerate(dataset.properties):
            if not prop.schema.is_continuous:
                continue
            continuous_indices.append(m)
            values = prop.values
            with np.errstate(invalid="ignore"):
                center = np.nanmean(values, axis=0)
            center = np.where(np.isnan(center), 0.0, center)
            scale = column_std(values)
            normalized.append((values - center[None, :]) / scale[None, :])
            centers.append(center)
            scales.append(scale)

        if not continuous_indices:
            raise ValueError("GTM requires at least one continuous property")

        # --- coordinate-ascent MAP inference ----------------------------
        sigma_sq = np.ones(k)
        truths_norm = [
            weighted_mean_columns(matrix, np.ones(k)) for matrix in normalized
        ]
        iterations = 0
        converged = False
        for iterations in range(1, params.max_iterations + 1):
            # Truth step: precision-weighted mean with Gaussian prior.
            precision = 1.0 / sigma_sq
            new_truths = []
            for matrix in normalized:
                observed = ~np.isnan(matrix)
                weight = np.where(observed, precision[:, None], 0.0)
                numerator = (params.mu0 / params.sigma0_sq
                             + np.nansum(
                                 np.where(observed, matrix, 0.0) * weight,
                                 axis=0))
                denominator = 1.0 / params.sigma0_sq + weight.sum(axis=0)
                new_truths.append(numerator / denominator)
            # Variance step: inverse-Gamma MAP on squared residuals.
            residual_sq = np.zeros(k)
            counts = np.zeros(k)
            for matrix, mu in zip(normalized, new_truths):
                observed = ~np.isnan(matrix)
                diff = np.where(observed, matrix - mu[None, :], 0.0)
                residual_sq += (diff ** 2).sum(axis=1)
                counts += observed.sum(axis=1)
            new_sigma_sq = (2.0 * params.beta + residual_sq) / (
                2.0 * (params.alpha + 1.0) + counts
            )
            delta = float(np.abs(new_sigma_sq - sigma_sq).max())
            sigma_sq = new_sigma_sq
            truths_norm = new_truths
            if delta < params.tol:
                converged = True
                break

        # --- de-normalize truths and assemble the result -----------------
        columns: list[np.ndarray] = []
        cont_cursor = 0
        for m, prop in enumerate(dataset.schema):
            if prop.uses_codec:
                columns.append(
                    np.full(dataset.n_objects, MISSING_CODE, dtype=np.int32)
                )
            else:
                mu = truths_norm[cont_cursor]
                columns.append(
                    mu * scales[cont_cursor] + centers[cont_cursor]
                )
                cont_cursor += 1
        truths = TruthTable(
            schema=dataset.schema,
            object_ids=dataset.object_ids,
            columns=columns,
            codecs=dataset.codecs(),
        )
        return TruthDiscoveryResult(
            truths=truths,
            weights=1.0 / sigma_sq,
            source_ids=dataset.source_ids,
            method=self.name,
            iterations=iterations,
            converged=converged,
        )
