"""Gaussian Truth Model (GTM) — Zhao & Han, QDB 2012 [14].

A Bayesian probabilistic truth-discovery model for *continuous* data: each
entry has a latent Gaussian truth ``mu_e``, each source a latent variance
``sigma_k^2`` with an inverse-Gamma prior, and observations are
``v_ek ~ N(mu_e, sigma_k^2)``.  Following the original paper we run
coordinate-ascent MAP inference on per-entry z-score-normalized values
(their preprocessing step), alternating:

* truth update — precision-weighted posterior mean of the claims,
  shrunk toward the prior mean;
* source-variance update — MAP of the inverse-Gamma posterior given the
  source's squared residuals.

Categorical properties are ignored (the method is continuous-only, which
is why Table 2 reports "NA" for its Error Rate); the reliability score
reported per source is its estimated *precision* ``1 / sigma_k^2``.

The implementation works on claim views: z-scores, precision-weighted
posterior sums and per-source residual aggregates are all
:mod:`repro.core.kernels` segment reductions
(:func:`~repro.core.kernels.segment_sum`,
:func:`~repro.core.kernels.accumulate_source_deviations`), so dense and
sparse inputs produce bit-identical results.  The iteration itself has
no worker/chunk formulation (the variance step couples every property's
residuals), so a process/mmap backend request degrades to inline sparse
execution with the reason traced in the result's ``backend_reason``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import kernels
from ..core.result import TruthDiscoveryResult
from ..data.encoding import MISSING_CODE
from ..data.schema import PropertyKind
from ..data.table import MultiSourceDataset, TruthTable
from .base import ConflictResolver, register_resolver

#: why a parallel backend cannot serve GTM's steps (traced on degrade)
_INLINE_REASON = (
    "GTM's precision-weighted Bayesian updates couple all properties "
    "per source and have no worker/chunk kernels"
)


@dataclass(frozen=True)
class GTMParams:
    """Hyper-parameters, defaulting to the original paper's suggestions."""

    #: inverse-Gamma prior on source variances
    alpha: float = 10.0
    beta: float = 10.0
    #: Gaussian prior on (normalized) truths
    mu0: float = 0.0
    sigma0_sq: float = 1.0
    max_iterations: int = 50
    tol: float = 1e-8

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0 or self.sigma0_sq <= 0:
            raise ValueError("alpha, beta and sigma0_sq must be positive")


class _NormalizedProperty:
    """One continuous property's z-scored claim arrays (claim view)."""

    def __init__(self, prop) -> None:
        view = prop.claim_view()
        self.indptr = np.asarray(view.indptr, dtype=np.int64)
        self.source_idx = np.asarray(view.source_idx)
        object_idx = np.asarray(view.object_idx)
        values = np.asarray(view.values, dtype=np.float64)
        counts = np.diff(self.indptr).astype(np.float64)
        sums = kernels.segment_sum(values, self.indptr)
        self.center = np.where(counts > 0,
                               sums / np.maximum(counts, 1.0), 0.0)
        self.scale = view.entry_std()
        self.z = ((values - self.center[object_idx])
                  / self.scale[object_idx])
        self.object_idx = object_idx


@register_resolver
class GTMResolver(ConflictResolver):
    """Gaussian Truth Model for continuous properties.

    Parameters
    ----------
    params:
        Hyper-parameters (:class:`GTMParams`); the defaults follow the
        original paper.
    backend / n_workers / chunk_claims:
        Execution-backend knobs (see :class:`ConflictResolver`); runs
        inline on dense/sparse, degrades (traced) on process/mmap.
    """

    name = "GTM"
    handles = frozenset((PropertyKind.CONTINUOUS,))
    scores_are_unreliability = False  # we report precision = reliability

    def __init__(self, params: GTMParams | None = None,
                 **backend_kwargs) -> None:
        super().__init__(**backend_kwargs)
        self.params = params or GTMParams()

    def fit(self, dataset: MultiSourceDataset) -> TruthDiscoveryResult:
        """Run coordinate-ascent MAP inference on z-scored claims."""
        session = self._session(dataset)
        session.require_inline(_INLINE_REASON)
        try:
            return session.stamp(self._fit_inline(session.data))
        finally:
            session.close()

    def _fit_inline(self, data) -> TruthDiscoveryResult:
        params = self.params
        k = data.n_sources

        # --- preprocessing: z-score every entry across its claims --------
        normalized: list[_NormalizedProperty] = []
        continuous_indices: list[int] = []
        for m, prop in enumerate(data.properties):
            if not prop.schema.is_continuous:
                continue
            continuous_indices.append(m)
            normalized.append(_NormalizedProperty(prop))

        if not continuous_indices:
            raise ValueError("GTM requires at least one continuous property")

        # --- coordinate-ascent MAP inference ----------------------------
        sigma_sq = np.ones(k)
        truths_norm = [
            kernels.segment_weighted_mean(
                norm.z, np.ones(norm.z.shape[0]), norm.indptr,
                group_of_claim=norm.object_idx,
            )
            for norm in normalized
        ]
        iterations = 0
        converged = False
        for iterations in range(1, params.max_iterations + 1):
            # Truth step: precision-weighted mean with Gaussian prior.
            precision = 1.0 / sigma_sq
            new_truths = []
            for norm in normalized:
                claim_precision = precision[norm.source_idx]
                numerator = (params.mu0 / params.sigma0_sq
                             + kernels.segment_sum(
                                 norm.z * claim_precision, norm.indptr))
                denominator = (1.0 / params.sigma0_sq
                               + kernels.segment_sum(claim_precision,
                                                     norm.indptr))
                new_truths.append(numerator / denominator)
            # Variance step: inverse-Gamma MAP on squared residuals.
            residual_sq = np.zeros(k)
            counts = np.zeros(k)
            for norm, mu in zip(normalized, new_truths):
                prop_sq, prop_counts = kernels.accumulate_source_deviations(
                    (norm.z - mu[norm.object_idx]) ** 2,
                    norm.source_idx, k,
                )
                residual_sq += prop_sq
                counts += prop_counts
            new_sigma_sq = (2.0 * params.beta + residual_sq) / (
                2.0 * (params.alpha + 1.0) + counts
            )
            delta = float(np.abs(new_sigma_sq - sigma_sq).max())
            sigma_sq = new_sigma_sq
            truths_norm = new_truths
            if delta < params.tol:
                converged = True
                break

        # --- de-normalize truths and assemble the result -----------------
        columns: list[np.ndarray] = []
        cont_cursor = 0
        for m, prop in enumerate(data.schema):
            if prop.uses_codec:
                columns.append(
                    np.full(data.n_objects, MISSING_CODE, dtype=np.int32)
                )
            else:
                norm = normalized[cont_cursor]
                columns.append(
                    truths_norm[cont_cursor] * norm.scale + norm.center
                )
                cont_cursor += 1
        truths = TruthTable(
            schema=data.schema,
            object_ids=data.object_ids,
            columns=columns,
            codecs=data.codecs(),
        )
        return TruthDiscoveryResult(
            truths=truths,
            weights=1.0 / sigma_sq,
            source_ids=data.source_ids,
            method=self.name,
            iterations=iterations,
            converged=converged,
        )
