"""Claim-graph substrate for fact-based truth-discovery baselines.

Investment, PooledInvestment, 2/3-Estimates, TruthFinder and AccuSim were
all designed for *facts*: per entry, each distinct claimed value is a fact,
each source's observation is a claim on one fact, and claiming one fact
implicitly disputes the entry's other facts.  Section 3.1.2 of the CRH
paper runs them on heterogeneous data "by regarding continuous
observations as facts too"; this module builds exactly that view from a
:class:`~repro.data.table.MultiSourceDataset`.

The graph is fully columnar (flat numpy arrays plus ``bincount``-style
group reductions) so the baselines stay vectorized:

* **claims**: ``claim_source[c]`` claims fact ``claim_fact[c]``;
* **facts**: fact ``f`` belongs to entry ``fact_entry[f]`` and carries the
  claimed value (a float for continuous properties, a category code for
  categorical ones);
* **entries**: entry ``e`` is the (object, property) pair
  ``(entry_object[e], entry_property[e])``.

Facts are numbered so that facts of the same entry are contiguous,
enabling per-entry segment reductions via ``entry_fact_start``.

The graph is built from *claim views* in canonical (object-major,
source-minor) order, so a dense dataset and its sparse
:class:`~repro.data.claims_matrix.ClaimsMatrix` counterpart produce
byte-identical graphs — and therefore bit-identical baseline results —
on the dense and sparse backends.  The fact-graph iterations themselves
have no worker/chunk formulation; resolvers built on this module
degrade (traced) to inline sparse execution on the process and mmap
backends, see :func:`claim_graph_session`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.encoding import MISSING_CODE
from ..data.table import TruthTable


@dataclass(frozen=True)
class ClaimGraph:
    """Columnar claim/fact/entry view of a multi-source dataset."""

    n_sources: int
    n_entries: int
    n_facts: int
    #: (C,) source index of every claim
    claim_source: np.ndarray
    #: (C,) fact index of every claim
    claim_fact: np.ndarray
    #: (F,) entry index of every fact (facts sorted by entry)
    fact_entry: np.ndarray
    #: (F,) claimed value: float for continuous facts, code for categorical
    fact_value: np.ndarray
    #: (F,) True where the fact belongs to a continuous property
    fact_is_continuous: np.ndarray
    #: (E,) property index of every entry
    entry_property: np.ndarray
    #: (E,) object index of every entry
    entry_object: np.ndarray
    #: (E + 1,) fact-range boundaries: facts of entry e are
    #: ``fact_entry[entry_fact_start[e]:entry_fact_start[e + 1]]``
    entry_fact_start: np.ndarray

    # ------------------------------------------------------------------
    # group reductions
    # ------------------------------------------------------------------
    @property
    def n_claims(self) -> int:
        return self.claim_source.size

    def claims_per_source(self) -> np.ndarray:
        """Number of claims made by each source."""
        return np.bincount(self.claim_source, minlength=self.n_sources)

    def claimants_per_fact(self) -> np.ndarray:
        """Number of sources claiming each fact."""
        return np.bincount(self.claim_fact, minlength=self.n_facts)

    def claimants_per_entry(self) -> np.ndarray:
        """Number of claims made about each entry."""
        return np.bincount(self.fact_entry[self.claim_fact],
                           minlength=self.n_entries)

    def facts_per_entry(self) -> np.ndarray:
        """Number of distinct claimed values per entry."""
        return np.diff(self.entry_fact_start)

    def sum_claims_by_fact(self, per_claim: np.ndarray) -> np.ndarray:
        """Sum a per-claim quantity over each fact's claimants."""
        return np.bincount(self.claim_fact, weights=per_claim,
                           minlength=self.n_facts)

    def sum_claims_by_source(self, per_claim: np.ndarray) -> np.ndarray:
        """Sum a per-claim quantity over each source's claims."""
        return np.bincount(self.claim_source, weights=per_claim,
                           minlength=self.n_sources)

    def sum_facts_by_entry(self, per_fact: np.ndarray) -> np.ndarray:
        """Sum a per-fact quantity over each entry's facts."""
        return np.bincount(self.fact_entry, weights=per_fact,
                           minlength=self.n_entries)

    def argmax_fact_per_entry(self, fact_scores: np.ndarray) -> np.ndarray:
        """Index of the highest-scoring fact of every entry.

        Deterministic: ties resolve to the fact with the larger index
        within the entry's contiguous block.
        """
        order = np.lexsort((fact_scores, self.fact_entry))
        # Facts are grouped by entry; the last position of each group after
        # the secondary sort on score is that entry's argmax.
        last_of_entry = self.entry_fact_start[1:] - 1
        return order[last_of_entry]

    def entry_similarity_sums(self, fact_scores: np.ndarray,
                              bandwidth: float = 1.0) -> np.ndarray:
        """Similarity-weighted score mass from the *other* facts per fact.

        For continuous facts, ``sim(f, f') = exp(-|v_f - v_f'| / (b * s_e))``
        where ``s_e`` is the std of the entry's claimed values — the
        standard implication function used by TruthFinder/AccuSim for
        numeric values.  Categorical facts get zero (distinct categories do
        not imply each other).  Returns, for every fact,
        ``sum_{f' != f, same entry} sim(f, f') * fact_scores[f']``.

        Vectorized over all eligible entries at once: the ``(f_e, f_e)``
        similarity matrices are flattened into one pair expansion of
        total size ``sum_e f_e^2`` and reduced with a single weighted
        ``bincount`` — no per-entry Python loop.
        """
        result = np.zeros(self.n_facts)
        sizes = self.facts_per_entry().astype(np.int64)
        first_fact = self.entry_fact_start[:-1]
        eligible = np.flatnonzero(
            (sizes >= 2)
            & self.fact_is_continuous[np.minimum(first_fact,
                                                 max(self.n_facts - 1, 0))]
        )
        if eligible.size == 0:
            return result
        # Per-entry fact-value std (ddof=0, two-pass), non-positive -> 1.
        counts = np.maximum(sizes.astype(np.float64), 1.0)
        mean = (np.bincount(self.fact_entry, weights=self.fact_value,
                            minlength=self.n_entries) / counts)
        centered_sq = (self.fact_value - mean[self.fact_entry]) ** 2
        variance = (np.bincount(self.fact_entry, weights=centered_sq,
                                minlength=self.n_entries) / counts)
        scale = np.sqrt(variance)
        scale = np.where(scale > 0, scale, 1.0)
        # Pair expansion: for entry e with f_e facts, f_e^2 (row, col)
        # pairs laid out row-major, exactly the per-entry sim @ scores.
        pair_counts = sizes[eligible] * sizes[eligible]
        offsets = np.concatenate(([0], np.cumsum(pair_counts)))
        within = (np.arange(offsets[-1], dtype=np.int64)
                  - np.repeat(offsets[:-1], pair_counts))
        entry_rep = np.repeat(np.arange(eligible.size), pair_counts)
        size_rep = sizes[eligible][entry_rep]
        start_rep = first_fact[eligible][entry_rep]
        rows = start_rep + within // size_rep
        cols = start_rep + within % size_rep
        sim = np.exp(
            -np.abs(self.fact_value[rows] - self.fact_value[cols])
            / (bandwidth * scale[eligible][entry_rep])
        )
        contribution = np.where(rows != cols,
                                sim * fact_scores[cols], 0.0)
        result += np.bincount(rows, weights=contribution,
                              minlength=self.n_facts)
        return result


def build_claim_graph(dataset) -> ClaimGraph:
    """Flatten a dataset into a :class:`ClaimGraph` (facts = claimed values).

    ``dataset`` may be a dense
    :class:`~repro.data.table.MultiSourceDataset` or a sparse
    :class:`~repro.data.claims_matrix.ClaimsMatrix`: claims are read
    through each property's canonical claim view, so both
    representations yield byte-identical graphs.
    """
    n_objects = dataset.n_objects
    all_entry_keys: list[np.ndarray] = []
    all_sources: list[np.ndarray] = []
    all_value_codes: list[np.ndarray] = []
    all_values: list[np.ndarray] = []
    all_is_continuous: list[np.ndarray] = []

    for m, prop in enumerate(dataset.properties):
        view = prop.claim_view()
        objects = np.asarray(view.object_idx).astype(np.int64)
        sources = np.asarray(view.source_idx).astype(np.int64)
        if prop.schema.is_continuous:
            values = np.asarray(view.values, dtype=np.float64)
            unique_vals, value_codes = np.unique(values, return_inverse=True)
            numeric = unique_vals[value_codes]
            continuous = np.ones(values.size, dtype=bool)
        else:
            value_codes = np.asarray(view.values).astype(np.int64)
            numeric = value_codes.astype(np.float64)
            continuous = np.zeros(value_codes.size, dtype=bool)
        all_entry_keys.append(np.int64(m) * n_objects + objects)
        all_sources.append(sources)
        all_value_codes.append(value_codes.astype(np.int64))
        all_values.append(numeric.astype(np.float64))
        all_is_continuous.append(continuous)

    entry_keys = np.concatenate(all_entry_keys)
    sources = np.concatenate(all_sources)
    value_codes = np.concatenate(all_value_codes)
    numeric_values = np.concatenate(all_values)
    continuous_mask = np.concatenate(all_is_continuous)

    unique_entries, entry_of_claim = np.unique(entry_keys,
                                               return_inverse=True)
    n_entries = unique_entries.size
    entry_property = (unique_entries // n_objects).astype(np.int32)
    entry_object = (unique_entries % n_objects).astype(np.int32)

    # Facts: unique (entry, value-code) pairs; the key arithmetic stays
    # inside int64 because value codes are bounded by the claim count.
    n_value_codes = int(value_codes.max()) + 1 if value_codes.size else 1
    fact_keys = entry_of_claim.astype(np.int64) * n_value_codes + value_codes
    unique_facts, first_claim, fact_of_claim = np.unique(
        fact_keys, return_index=True, return_inverse=True
    )
    fact_entry = (unique_facts // n_value_codes).astype(np.int64)
    fact_value = numeric_values[first_claim]
    fact_is_continuous = continuous_mask[first_claim]

    # np.unique returns fact keys sorted, and the keys are entry-major, so
    # facts are already contiguous per entry.
    counts = np.bincount(fact_entry, minlength=n_entries)
    entry_fact_start = np.concatenate(([0], np.cumsum(counts)))

    return ClaimGraph(
        n_sources=dataset.n_sources,
        n_entries=n_entries,
        n_facts=unique_facts.size,
        claim_source=sources.astype(np.int32),
        claim_fact=fact_of_claim.astype(np.int64),
        fact_entry=fact_entry,
        fact_value=fact_value,
        fact_is_continuous=fact_is_continuous,
        entry_property=entry_property,
        entry_object=entry_object,
        entry_fact_start=entry_fact_start.astype(np.int64),
    )


def claim_graph_session(resolver, dataset):
    """Resolve a fact-graph resolver's backend and build its graph.

    Returns ``(session, graph)``.  Fact-graph iterations (Investment,
    2/3-Estimates, TruthFinder, AccuSim) walk the whole claim/fact
    arrays every round and have no worker/chunk formulation, so a
    process/mmap backend request degrades immediately to inline sparse
    execution with that reason traced — the graph is then built from
    the resolved data's claim views (dense or sparse, identical
    bytes).  The caller must ``session.close()`` when done and
    ``session.stamp(result)`` before returning.
    """
    session = resolver._session(dataset)
    session.require_inline(
        f"{resolver.name}'s fact-graph iteration walks global "
        "claim/fact arrays and has no worker/chunk kernels"
    )
    return session, build_claim_graph(session.data)


def winners_to_truth_table(graph: ClaimGraph,
                           dataset,
                           winning_facts: np.ndarray) -> TruthTable:
    """Decode the per-entry winning facts back into a truth table.

    ``dataset`` may be dense or a claims matrix — only schema, object
    ids and codecs are read.
    """
    columns: list[np.ndarray] = []
    for prop in dataset.schema:
        if prop.uses_codec:
            columns.append(
                np.full(dataset.n_objects, MISSING_CODE, dtype=np.int32)
            )
        else:
            columns.append(np.full(dataset.n_objects, np.nan))
    entries = np.arange(graph.n_entries)
    props = graph.entry_property[entries]
    objects = graph.entry_object[entries]
    values = graph.fact_value[winning_facts]
    for m in range(len(dataset.schema)):
        mask = props == m
        if dataset.schema[m].uses_codec:
            columns[m][objects[mask]] = values[mask].astype(np.int32)
        else:
            columns[m][objects[mask]] = values[mask]
    return TruthTable(
        schema=dataset.schema,
        object_ids=dataset.object_ids,
        columns=columns,
        codecs=dataset.codecs(),
    )
