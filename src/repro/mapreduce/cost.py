"""Simulated-cluster cost model for MapReduce jobs.

The engine in this package executes in-process, so wall-clock time says
nothing about cluster behaviour.  This model converts a job's volume
statistics (:class:`~repro.mapreduce.job.JobStats`) into *simulated
cluster seconds*, reproducing the three scaling phenomena of the paper's
Hadoop experiments:

* **setup-dominated small jobs** (Table 6: 1e4 and 1e5 observations take
  nearly the same time) — fixed per-job and per-task setup costs;
* **linear growth in observations/sources** (Fig. 7) — per-record map,
  shuffle and reduce costs;
* **non-monotone reducer count** (Fig. 8: 10 reducers beat both 2 and
  25) — per-reducer work shrinks as ``1/n`` while coordination and task
  startup grow linearly in ``n``.

Calibration: defaults are fitted to the *shape* of the paper's Dell
cluster numbers (Table 6: ~94 s floor, 669 s at 1e8 observations per
full run), not to reproduce them exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .job import JobStats


@dataclass(frozen=True)
class ClusterCostModel:
    """Maps job volume statistics to simulated cluster seconds."""

    #: fixed per-job overhead (JVM start, scheduling, HDFS metadata)
    job_setup_s: float = 4.0
    #: startup cost of each map / reduce task
    task_setup_s: float = 0.4
    #: per-record costs
    map_record_s: float = 1.2e-6
    shuffle_record_s: float = 8.0e-7
    reduce_record_s: float = 1.0e-6
    #: per-reducer coordination overhead (master heartbeat, partitioning)
    reducer_coordination_s: float = 0.02

    def __post_init__(self) -> None:
        for field_name in (
            "job_setup_s", "task_setup_s", "map_record_s",
            "shuffle_record_s", "reduce_record_s", "reducer_coordination_s",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    def job_time(self, stats: JobStats, n_mappers: int,
                 n_reducers: int) -> float:
        """Simulated makespan of one job in cluster seconds.

        Map tasks run in parallel (makespan = slowest task); the shuffle
        is network-bound on the aggregate volume; reduce tasks run in
        parallel but each started reducer costs setup + coordination.
        """
        if n_mappers < 1 or n_reducers < 1:
            raise ValueError("need at least one mapper and one reducer")
        per_map_records = stats.map_input_records / n_mappers
        map_phase = self.task_setup_s + per_map_records * self.map_record_s
        slowest_reducer = (
            max(stats.shuffle_in_per_reducer)
            if stats.shuffle_in_per_reducer else 0
        )
        # Each reducer pulls its partition over its own link, so the
        # shuffle is bound by the most-loaded reducer, not the aggregate.
        shuffle_phase = slowest_reducer * self.shuffle_record_s
        reduce_phase = (
            self.task_setup_s
            + slowest_reducer * self.reduce_record_s
            + n_reducers * self.reducer_coordination_s
        )
        return self.job_setup_s + map_phase + shuffle_phase + reduce_phase


@dataclass
class SimulatedClock:
    """Accumulates simulated cluster seconds across a multi-job run."""

    model: ClusterCostModel
    elapsed_s: float = 0.0

    def charge(self, stats: JobStats, n_mappers: int,
               n_reducers: int) -> float:
        """Add one job's simulated time; returns that job's time."""
        t = self.model.job_time(stats, n_mappers, n_reducers)
        self.elapsed_s += t
        return t
