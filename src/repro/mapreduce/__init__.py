"""In-process MapReduce substrate (Section 2.7's execution platform).

Two engines share one job-statistics format and one cluster cost model:

* :class:`LocalCluster` — record-at-a-time, classic ``(key, value)``
  semantics; use it for clarity, tests, and small inputs;
* :class:`VectorCluster` — columnar batches for the Table 6 / Fig. 7-8
  scaling sweeps.

The :class:`ClusterCostModel` converts volume statistics into *simulated
cluster seconds* (see its docstring for the calibration argument), and
:class:`SideFileStore` plays the role of the shared HDFS files the paper
keeps weights and truths in between jobs.
"""

from .cost import ClusterCostModel, SimulatedClock
from .engine import ClusterConfig, EngineCounters, JobResult, LocalCluster
from .fs import SideFileStore
from .job import JobStats, MapReduceJob
from .partitioner import array_partition, hash_partition
from .vector import (
    GroupedArrays,
    KeyedArrays,
    VectorCluster,
    VectorJob,
    VectorJobResult,
    group_by_key,
)

__all__ = [
    "ClusterConfig",
    "ClusterCostModel",
    "EngineCounters",
    "GroupedArrays",
    "JobResult",
    "JobStats",
    "KeyedArrays",
    "LocalCluster",
    "MapReduceJob",
    "SideFileStore",
    "SimulatedClock",
    "VectorCluster",
    "VectorJob",
    "VectorJobResult",
    "array_partition",
    "group_by_key",
    "hash_partition",
]
