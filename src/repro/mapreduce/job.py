"""MapReduce job specification (Section 2.7's programming model).

A job is a mapper, a reducer, and optionally a combiner — exactly the
three user hooks of the MapReduce paper [35] that Section 2.7 programs
against.  Mappers and reducers are plain callables:

* ``mapper(key, value) -> iterable of (key', value')``
* ``reducer(key', values) -> iterable of (key'', value'')``
* ``combiner(key', values) -> iterable of (key', value')`` — run inside
  each map task over that task's output, to shrink the shuffle (the paper
  adds one for the weight-assignment step, Section 2.7.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

MapFn = Callable[[Hashable, object], Iterable[tuple[Hashable, object]]]
ReduceFn = Callable[[Hashable, list], Iterable[tuple[Hashable, object]]]


@dataclass(frozen=True)
class MapReduceJob:
    """One MapReduce job: mapper + reducer (+ optional combiner)."""

    name: str
    mapper: MapFn
    reducer: ReduceFn
    combiner: ReduceFn | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if not callable(self.mapper) or not callable(self.reducer):
            raise TypeError("mapper and reducer must be callable")
        if self.combiner is not None and not callable(self.combiner):
            raise TypeError("combiner must be callable when given")


@dataclass
class JobStats:
    """Volume counters collected while a job executes.

    These feed the :class:`~repro.mapreduce.cost.ClusterCostModel`: the
    simulated cluster clock is a function of how many records moved
    through each stage, not of local Python speed.
    """

    job_name: str = ""
    map_input_records: int = 0
    #: map-output records per map task (pre-combiner)
    map_output_per_task: list[int] = None
    #: records actually shuffled per map task (post-combiner)
    shuffle_out_per_task: list[int] = None
    #: records received per reduce task
    shuffle_in_per_reducer: list[int] = None
    reduce_output_records: int = 0

    def __post_init__(self) -> None:
        if self.map_output_per_task is None:
            self.map_output_per_task = []
        if self.shuffle_out_per_task is None:
            self.shuffle_out_per_task = []
        if self.shuffle_in_per_reducer is None:
            self.shuffle_in_per_reducer = []

    @property
    def map_output_records(self) -> int:
        return sum(self.map_output_per_task)

    @property
    def shuffled_records(self) -> int:
        return sum(self.shuffle_in_per_reducer)

    @property
    def combiner_savings(self) -> int:
        """Records the combiner removed from the shuffle."""
        return self.map_output_records - sum(self.shuffle_out_per_task)
