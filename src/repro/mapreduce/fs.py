"""Side-file store shared by all tasks of a MapReduce run.

Section 2.7 keeps the current source weights and the estimated truths "in
an external file [that] all Reducer/Mapper nodes can read".  This module
provides that shared store: a small versioned key/value space the driver
writes between jobs and every task reads.  By default it is an in-memory
dict; pass a ``directory`` to persist every write as an ``.npy`` file —
the literal "external file" of the paper, and what a multi-process
deployment would read through a shared filesystem.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np


class SideFileStore:
    """Versioned shared files for cross-job state (weights, truths).

    With ``directory=None`` (default) files live in memory only; with a
    directory, each write lands as ``<directory>/<name>.npy`` and reads
    come back from disk, so independent processes sharing the directory
    observe each other's updates.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self._files: dict[str, np.ndarray] = {}
        self._versions: dict[str, int] = {}
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        #: total successful reads served (the paper's side-file traffic)
        self.read_count = 0
        #: total writes accepted
        self.write_count = 0

    def _path(self, name: str) -> Path:
        return self._directory / f"{name}.npy"

    def write(self, name: str, data: np.ndarray) -> int:
        """Store (a copy of) ``data`` under ``name``; returns the version."""
        if not name:
            raise ValueError("file name must be non-empty")
        payload = np.array(data, copy=True)
        if self._directory is not None:
            # Write-then-rename so concurrent readers never see a torn
            # file (np.save appends ".npy" unless the name already ends
            # with it, hence the ".tmp.npy" suffix).
            temporary = self._path(name).with_suffix(".tmp.npy")
            np.save(temporary, payload)
            temporary.replace(self._path(name))
        else:
            self._files[name] = payload
        self._versions[name] = self._versions.get(name, 0) + 1
        self.write_count += 1
        return self._versions[name]

    def read(self, name: str) -> np.ndarray:
        """Read (a copy of) the file; raises ``FileNotFoundError`` if absent."""
        if self._directory is not None:
            path = self._path(name)
            if not path.exists():
                raise FileNotFoundError(
                    f"side file {name!r} does not exist in "
                    f"{self._directory}"
                )
            self.read_count += 1
            return np.load(path)
        try:
            payload = self._files[name].copy()
        except KeyError:
            raise FileNotFoundError(
                f"side file {name!r} does not exist; "
                f"available: {sorted(self._files)}"
            ) from None
        self.read_count += 1
        return payload

    def version(self, name: str) -> int:
        """Number of times ``name`` has been written (0 = never)."""
        return self._versions.get(name, 0)

    def exists(self, name: str) -> bool:
        """Whether a file with this name has been written."""
        if self._directory is not None:
            return self._path(name).exists()
        return name in self._files

    def delete(self, name: str) -> None:
        """Remove the file if present (idempotent)."""
        if self._directory is not None:
            self._path(name).unlink(missing_ok=True)
        else:
            self._files.pop(name, None)

    def _names(self) -> list[str]:
        if self._directory is not None:
            return sorted(p.stem for p in self._directory.glob("*.npy"))
        return sorted(self._files)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())
