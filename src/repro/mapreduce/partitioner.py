"""Shuffle partitioners: assign intermediate keys to reduce tasks."""

from __future__ import annotations

from typing import Hashable

import numpy as np


def hash_partition(key: Hashable, n_reducers: int) -> int:
    """Default partitioner: stable hash of the key modulo reducer count.

    Uses Python's ``hash`` for strings/tuples but routes plain integers
    directly (``hash(int)`` is the identity, which is fine and fast).
    """
    if n_reducers < 1:
        raise ValueError("n_reducers must be >= 1")
    return hash(key) % n_reducers


def array_partition(keys: np.ndarray, n_reducers: int) -> np.ndarray:
    """Vectorized partitioner for integer key arrays."""
    if n_reducers < 1:
        raise ValueError("n_reducers must be >= 1")
    keys = np.asarray(keys)
    if not np.issubdtype(keys.dtype, np.integer):
        raise TypeError(f"array partitioner needs integer keys, got {keys.dtype}")
    return (keys % n_reducers).astype(np.int64)


def range_partition(indptr: np.ndarray, n_parts: int) -> np.ndarray:
    """Split a CSR row pointer into claim-balanced contiguous row ranges.

    Returns ``n_parts + 1`` row boundaries ``b`` such that rows
    ``b[i]:b[i + 1]`` of part ``i`` hold as close to ``total / n_parts``
    claims as contiguous row cuts allow: each cut lands on the row whose
    claim offset is nearest the ideal even split.  Parts are contiguous
    and cover every row, so per-row (per-object) computations remain
    independent across parts — the shard layout the process backend runs
    the truth step over.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    indptr = np.asarray(indptr, dtype=np.int64)
    total = int(indptr[-1])
    targets = (total * np.arange(1, n_parts, dtype=np.int64)) // n_parts
    cuts = np.searchsorted(indptr, targets, side="left")
    bounds = np.empty(n_parts + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[-1] = indptr.shape[0] - 1
    bounds[1:-1] = np.clip(cuts, 0, indptr.shape[0] - 1)
    # Boundaries must be non-decreasing even on degenerate pointers
    # (more parts than claims, long empty-row runs).
    np.maximum.accumulate(bounds, out=bounds)
    return bounds
