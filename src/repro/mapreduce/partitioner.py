"""Shuffle partitioners: assign intermediate keys to reduce tasks."""

from __future__ import annotations

from typing import Hashable

import numpy as np


def hash_partition(key: Hashable, n_reducers: int) -> int:
    """Default partitioner: stable hash of the key modulo reducer count.

    Uses Python's ``hash`` for strings/tuples but routes plain integers
    directly (``hash(int)`` is the identity, which is fine and fast).
    """
    if n_reducers < 1:
        raise ValueError("n_reducers must be >= 1")
    return hash(key) % n_reducers


def array_partition(keys: np.ndarray, n_reducers: int) -> np.ndarray:
    """Vectorized partitioner for integer key arrays."""
    if n_reducers < 1:
        raise ValueError("n_reducers must be >= 1")
    keys = np.asarray(keys)
    if not np.issubdtype(keys.dtype, np.integer):
        raise TypeError(f"array partitioner needs integer keys, got {keys.dtype}")
    return (keys % n_reducers).astype(np.int64)
