"""Vectorized MapReduce engine for large-scale sweeps.

The record-level :class:`~repro.mapreduce.engine.LocalCluster` executes
one Python call per record — faithful, but hopeless at the 10^7-record
scales of Table 6.  This engine keeps the same dataflow (splits ->
map -> combine -> hash-partition -> sort -> grouped reduce -> stats) but
moves data as *columnar batches*: a task receives its whole split as
parallel numpy arrays and returns keyed arrays.  The per-task and
per-record accounting is identical, so the cluster cost model prices both
engines the same way.

Semantically a vector map task is an ordinary map task whose user code is
vectorized; grouping and sorting happen between tasks exactly where the
shuffle would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..observability.tracer import Tracer
from .cost import SimulatedClock
from .engine import ClusterConfig, EngineCounters, emit_job_record
from .job import JobStats
from .partitioner import array_partition


@dataclass
class KeyedArrays:
    """A batch of key/value records as parallel columns.

    ``keys`` is an int64 array; ``values`` maps column names to arrays of
    the same length.  This is the vector engine's record format.
    """

    keys: np.ndarray
    values: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        self.keys = np.asarray(self.keys, dtype=np.int64)
        for name, column in self.values.items():
            column = np.asarray(column)
            if column.shape[0] != self.keys.shape[0]:
                raise ValueError(
                    f"column {name!r} has {column.shape[0]} rows for "
                    f"{self.keys.shape[0]} keys"
                )
            self.values[name] = column

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    def take(self, indices: np.ndarray) -> "KeyedArrays":
        """Row subset by index array, as a new batch."""
        return KeyedArrays(
            keys=self.keys[indices],
            values={n: c[indices] for n, c in self.values.items()},
        )

    def slice(self, start: int, stop: int) -> "KeyedArrays":
        """Contiguous row range [start, stop) as a new batch."""
        return KeyedArrays(
            keys=self.keys[start:stop],
            values={n: c[start:stop] for n, c in self.values.items()},
        )

    @staticmethod
    def concatenate(batches: list["KeyedArrays"]) -> "KeyedArrays":
        non_empty = [b for b in batches if len(b)]
        if not non_empty:
            return KeyedArrays(keys=np.empty(0, dtype=np.int64), values={})
        names = non_empty[0].values.keys()
        return KeyedArrays(
            keys=np.concatenate([b.keys for b in non_empty]),
            values={
                n: np.concatenate([b.values[n] for b in non_empty])
                for n in names
            },
        )


@dataclass
class GroupedArrays:
    """A reduce task's input: records sorted by key and grouped.

    Group ``g`` covers sorted rows ``starts[g]:starts[g + 1]`` and has key
    ``group_keys[g]``.
    """

    group_keys: np.ndarray
    starts: np.ndarray
    sorted: KeyedArrays

    @property
    def n_groups(self) -> int:
        return int(self.group_keys.shape[0])

    def segment_sum(self, column: str) -> np.ndarray:
        """Sum a value column within each group (the workhorse reduction)."""
        sums = np.add.reduceat(self.sorted.values[column], self.starts[:-1])
        return sums if self.n_groups else np.empty(0)

    def segment_count(self) -> np.ndarray:
        """Number of rows in each group."""
        return np.diff(self.starts)


def group_by_key(batch: KeyedArrays) -> GroupedArrays:
    """Sort a batch by key and compute group boundaries."""
    order = np.argsort(batch.keys, kind="stable")
    sorted_batch = batch.take(order)
    group_keys, first = np.unique(sorted_batch.keys, return_index=True)
    starts = np.concatenate([first, [len(sorted_batch)]]).astype(np.int64)
    return GroupedArrays(group_keys=group_keys, starts=starts,
                         sorted=sorted_batch)


VectorMapFn = Callable[[KeyedArrays], KeyedArrays]
VectorReduceFn = Callable[[GroupedArrays], KeyedArrays]


@dataclass(frozen=True)
class VectorJob:
    """A MapReduce job whose tasks operate on columnar batches."""

    name: str
    mapper: VectorMapFn
    reducer: VectorReduceFn
    combiner: VectorReduceFn | None = None


@dataclass
class VectorJobResult:
    output: KeyedArrays
    stats: JobStats
    simulated_seconds: float


class VectorCluster:
    """Columnar MapReduce executor sharing the cluster cost model.

    Like :class:`~repro.mapreduce.engine.LocalCluster`, accepts an
    optional :class:`~repro.observability.Tracer` (one ``mapreduce_job``
    record per job) and accumulates :attr:`counters` across jobs.
    """

    def __init__(self, config: ClusterConfig | None = None,
                 tracer: Tracer | None = None) -> None:
        self.config = config or ClusterConfig()
        self.clock = SimulatedClock(model=self.config.cost_model)
        self.tracer = tracer
        self.counters = EngineCounters()

    def run(self, job: VectorJob, records: KeyedArrays) -> VectorJobResult:
        """Execute one vector job over a columnar record batch."""
        config = self.config
        stats = JobStats(job_name=job.name)
        stats.map_input_records = len(records)

        # --- map (+ combine) per split ---------------------------------
        bounds = np.linspace(
            0, len(records), config.n_mappers + 1
        ).astype(np.int64)

        def map_task(bound):
            split = records.slice(int(bound[0]), int(bound[1]))
            mapped = job.mapper(split)
            raw_count = len(mapped)
            if job.combiner is not None and len(mapped):
                mapped = job.combiner(group_by_key(mapped))
            return raw_count, mapped

        shuffled: list[KeyedArrays] = []
        for raw_count, mapped in config.run_tasks(
            map_task, list(zip(bounds[:-1], bounds[1:]))
        ):
            stats.map_output_per_task.append(raw_count)
            stats.shuffle_out_per_task.append(len(mapped))
            shuffled.append(mapped)
        intermediate = KeyedArrays.concatenate(shuffled)

        # --- shuffle: hash partition + per-partition sorted reduce ------
        if len(intermediate):
            partitions = array_partition(intermediate.keys,
                                         config.n_reducers)
            parts = [
                intermediate.take(np.flatnonzero(partitions == r))
                for r in range(config.n_reducers)
            ]
            stats.shuffle_in_per_reducer = [len(p) for p in parts]

            def reduce_task(part):
                if not len(part):
                    return None
                return job.reducer(group_by_key(part))

            outputs = [
                result for result in config.run_tasks(reduce_task, parts)
                if result is not None
            ]
        else:
            stats.shuffle_in_per_reducer = [0] * config.n_reducers
            outputs = []
        output = KeyedArrays.concatenate(outputs)
        stats.reduce_output_records = len(output)

        simulated = self.clock.charge(
            stats, config.n_mappers, config.n_reducers
        )
        self.counters.charge(stats, config.n_mappers, config.n_reducers)
        emit_job_record(self.tracer, stats, config.n_mappers,
                        config.n_reducers, simulated)
        return VectorJobResult(output=output, stats=stats,
                               simulated_seconds=simulated)
