"""In-process MapReduce engine with faithful dataflow semantics.

:class:`LocalCluster` executes a :class:`~repro.mapreduce.job.MapReduceJob`
the way Hadoop would, minus the machines:

1. the input is split into ``n_mappers`` contiguous splits;
2. each map task applies the mapper to its records and, if a combiner is
   configured, groups its own output by key and combines it (shrinking
   the shuffle exactly as Section 2.7.3 describes);
3. the shuffle hash-partitions intermediate pairs across ``n_reducers``
   partitions and sorts each partition by key ("they will be sorted by
   Hadoop");
4. each reduce task walks its sorted partition group by group and applies
   the reducer.

Every stage records volume statistics into a
:class:`~repro.mapreduce.job.JobStats` so the cluster cost model can
price the run in simulated cluster seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import groupby
from operator import itemgetter
from typing import Hashable, Sequence

from ..observability import mapreduce_job_record
from ..observability.tracer import Tracer
from .cost import ClusterCostModel, SimulatedClock
from .job import JobStats, MapReduceJob
from .partitioner import hash_partition


@dataclass
class EngineCounters:
    """Cumulative per-cluster execution counters (always collected).

    These are a handful of integer adds per *job*, so they stay on even
    without a tracer; traced runs additionally emit one
    ``mapreduce_job`` record per job with the per-job breakdown.
    """

    jobs_run: int = 0
    map_invocations: int = 0
    reduce_invocations: int = 0
    records_shuffled: int = 0

    def charge(self, stats: JobStats, n_mappers: int,
               n_reducers: int) -> None:
        """Accumulate one finished job's volumes."""
        self.jobs_run += 1
        self.map_invocations += n_mappers
        self.reduce_invocations += n_reducers
        self.records_shuffled += stats.shuffled_records

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for ``run_end`` records)."""
        return {
            "jobs_run": self.jobs_run,
            "map_invocations": self.map_invocations,
            "reduce_invocations": self.reduce_invocations,
            "shuffled_records": self.records_shuffled,
        }


def emit_job_record(tracer: Tracer | None, stats: JobStats,
                    n_mappers: int, n_reducers: int,
                    simulated_seconds: float) -> None:
    """Emit one ``mapreduce_job`` trace record if tracing is enabled."""
    if tracer is None or not tracer.enabled:
        return
    tracer.emit(mapreduce_job_record(
        stats.job_name,
        map_tasks=n_mappers,
        reduce_tasks=n_reducers,
        map_input_records=stats.map_input_records,
        map_output_records=stats.map_output_records,
        shuffled_records=stats.shuffled_records,
        reduce_output_records=stats.reduce_output_records,
        combiner_savings=stats.combiner_savings,
        simulated_seconds=simulated_seconds,
    ))


@dataclass(frozen=True)
class ClusterConfig:
    """Degree of parallelism and cost model of the simulated cluster.

    ``executor`` selects how tasks physically run: ``"serial"`` (default;
    one task after another, fully deterministic and easiest to debug) or
    ``"threads"`` (map and reduce tasks run on a thread pool — real
    concurrency for numpy-heavy vector tasks, identical results because
    task outputs are collected in task order).
    """

    n_mappers: int = 4
    n_reducers: int = 4
    executor: str = "serial"
    cost_model: ClusterCostModel = field(default_factory=ClusterCostModel)

    def __post_init__(self) -> None:
        if self.n_mappers < 1 or self.n_reducers < 1:
            raise ValueError("need at least one mapper and one reducer")
        if self.executor not in ("serial", "threads"):
            raise ValueError(
                f"executor must be 'serial' or 'threads', "
                f"got {self.executor!r}"
            )

    def run_tasks(self, task, items: list) -> list:
        """Run ``task`` over ``items``, preserving item order."""
        if self.executor == "serial" or len(items) <= 1:
            return [task(item) for item in items]
        from concurrent.futures import ThreadPoolExecutor
        with ThreadPoolExecutor(max_workers=len(items)) as pool:
            return list(pool.map(task, items))


@dataclass
class JobResult:
    """Output pairs plus execution statistics of one job."""

    output: list[tuple[Hashable, object]]
    stats: JobStats
    simulated_seconds: float


def _split(records: Sequence, n_splits: int) -> list[Sequence]:
    """Contiguous near-equal input splits (empty splits allowed)."""
    total = len(records)
    base, extra = divmod(total, n_splits)
    splits = []
    start = 0
    for i in range(n_splits):
        size = base + (1 if i < extra else 0)
        splits.append(records[start:start + size])
        start += size
    return splits


def _combine(job: MapReduceJob,
             pairs: list[tuple[Hashable, object]]) -> list[tuple]:
    """Group one map task's output by key and run the combiner."""
    pairs.sort(key=itemgetter(0))
    combined: list[tuple[Hashable, object]] = []
    for key, group in groupby(pairs, key=itemgetter(0)):
        values = [value for _, value in group]
        combined.extend(job.combiner(key, values))
    return combined


class LocalCluster:
    """Executes MapReduce jobs in-process with cluster-shaped dataflow.

    Pass a :class:`~repro.observability.Tracer` to receive one
    ``mapreduce_job`` record per executed job; :attr:`counters` always
    accumulates cumulative task/shuffle totals across jobs.
    """

    def __init__(self, config: ClusterConfig | None = None,
                 tracer: Tracer | None = None) -> None:
        self.config = config or ClusterConfig()
        self.clock = SimulatedClock(model=self.config.cost_model)
        self.tracer = tracer
        self.counters = EngineCounters()

    def run(self, job: MapReduceJob,
            records: Sequence[tuple[Hashable, object]]) -> JobResult:
        """Run one job over ``(key, value)`` input records."""
        config = self.config
        stats = JobStats(job_name=job.name)
        stats.map_input_records = len(records)

        # --- map (+ combine) ------------------------------------------
        def map_task(split):
            task_output: list[tuple[Hashable, object]] = []
            for key, value in split:
                task_output.extend(job.mapper(key, value))
            raw_count = len(task_output)
            if job.combiner is not None:
                task_output = _combine(job, task_output)
            return raw_count, task_output

        partitions: list[list[tuple[Hashable, object]]] = [
            [] for _ in range(config.n_reducers)
        ]
        map_results = config.run_tasks(
            map_task, _split(records, config.n_mappers)
        )
        for raw_count, task_output in map_results:
            stats.map_output_per_task.append(raw_count)
            stats.shuffle_out_per_task.append(len(task_output))
            for key, value in task_output:
                partitions[hash_partition(key, config.n_reducers)].append(
                    (key, value)
                )

        # --- shuffle sort + reduce -------------------------------------
        def reduce_task(partition):
            # Hadoop guarantees reducers see keys in sorted order; sort on
            # the repr for heterogeneous keys, which is stable per run.
            partition.sort(key=lambda kv: repr(kv[0]))
            task_output: list[tuple[Hashable, object]] = []
            for key, group in groupby(partition, key=itemgetter(0)):
                values = [value for _, value in group]
                task_output.extend(job.reducer(key, values))
            return task_output

        output: list[tuple[Hashable, object]] = []
        stats.shuffle_in_per_reducer = [len(p) for p in partitions]
        for task_output in config.run_tasks(reduce_task, partitions):
            output.extend(task_output)
        stats.reduce_output_records = len(output)

        simulated = self.clock.charge(
            stats, config.n_mappers, config.n_reducers
        )
        self.counters.charge(stats, config.n_mappers, config.n_reducers)
        emit_job_record(self.tracer, stats, config.n_mappers,
                        config.n_reducers, simulated)
        return JobResult(output=output, stats=stats,
                         simulated_seconds=simulated)
